"""Parallel policy-suite execution over one shared columnar trace.

The Figure 5 suite replays the *same* trace through nine independent
policy configurations; nothing flows between the runs, so they
parallelize perfectly.  This module fans the runs across
``concurrent.futures`` worker processes:

* the parent serializes the columnar trace once to a temporary ``.npz``
  file (a compact binary write, far cheaper than pickling object
  traces per task);
* each worker's initializer loads the file once and rebuilds the
  :class:`~repro.sim.experiment.ExperimentContext` — per-day block
  counts are recomputed vectorized from the columns, which the test
  suite asserts is identical to the reference computation;
* each task runs one policy and pickles its full
  :class:`~repro.sim.engine.SimulationResult` back (benchmarks inspect
  ``result.policy`` and ``result.cache``, not just the stats).

Results are deterministic and equal to a serial run: every worker sees
the same trace bytes, the same seeds, and the same oracle inputs.

Fault tolerance and observability
---------------------------------

Long-running multi-config sweeps cannot afford to lose every completed
run to one sick worker, so :func:`run_suite_parallel` degrades instead
of raising:

* a task that raises (or exceeds ``task_timeout``) is retried **once**;
  a second failure becomes a structured :class:`PolicyFailure` in the
  returned :class:`SuiteRun` rather than an exception;
* a dead worker process (``BrokenProcessPool``) routes every
  not-yet-collected task through in-process **serial fallback**
  execution against the parent's own context — completed pool results
  are kept, and serial results are bit-identical to a serial run;
* every task's engine used, wall seconds, retries, worker pid, and
  outcome is recorded in a JSON-serializable **run manifest**
  (:attr:`SuiteRun.manifest`, schema in the README).

For CI and testing, the ``SIEVESTORE_FAULT_INJECT`` environment
variable (format ``mode:policy[:arg]``) injects failures into the named
policy's task: ``raise`` fails it every time, ``crash`` hard-kills the
worker process (``os._exit``; in serial execution it degrades to a
raise), ``flaky:policy:marker-path`` fails only the first execution
(exercising the retry path), and ``hang:policy:seconds`` sleeps in the
worker (exercising ``task_timeout``).  Unset means zero effect.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from collections import OrderedDict
from collections.abc import Mapping
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.sim import engine as _engine
from repro.sim.engine import DEFAULT_CHECKPOINT_EVERY, SimulationResult
from repro.traces.columnar import ColumnarTrace
from repro.util.atomic import atomic_write

#: Bump on manifest layout changes; consumers refuse unknown versions.
#: v2 added per-task ``fault_plan`` (plan fingerprint) and
#: ``checkpoint`` (path + cadence) metadata.
MANIFEST_SCHEMA_VERSION = 2

#: Manifest schema emitted when metrics collection is on: v3 adds a
#: per-task ``"metrics"`` snapshot and a suite-level ``"metrics"``
#: block.  Runs without observability keep emitting v2 byte-identically.
MANIFEST_SCHEMA_VERSION_METRICS = 3

#: Environment variable enabling fault injection (``mode:policy[:arg]``).
FAULT_ENV_VAR = "SIEVESTORE_FAULT_INJECT"

#: Attempts per task: the initial run plus one bounded retry.
MAX_ATTEMPTS = 2

#: Per-process simulation context, installed by the pool initializer.
_WORKER_CONTEXT = None


class InjectedWorkerFault(RuntimeError):
    """Raised by the fault-injection hook (testing/CI only)."""


def _write_json_atomic(path: Union[str, Path], payload: dict) -> None:
    """Publish ``payload`` as indented JSON all-or-nothing.

    Manifests are polled by monitoring tooling while runs are live, so
    a torn write must never be observable.
    """
    encoded = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    with atomic_write(path) as handle:
        handle.write(encoded)


def _parse_fault_spec() -> Optional[tuple]:
    spec = os.environ.get(FAULT_ENV_VAR)
    if not spec:
        return None
    parts = spec.split(":", 2)
    mode = parts[0].strip().lower()
    policy = parts[1] if len(parts) > 1 else ""
    arg = parts[2] if len(parts) > 2 else None
    return mode, policy, arg


def _maybe_inject_fault(name: str, in_worker: bool) -> None:
    """Apply the ``SIEVESTORE_FAULT_INJECT`` spec to task ``name``.

    No-op unless the env var is set and names this policy.  ``crash``
    only hard-exits inside a worker process — in serial (parent)
    execution it raises instead, so fault injection can never take the
    caller's process down.
    """
    spec = _parse_fault_spec()
    if spec is None:
        return
    mode, policy, arg = spec
    if policy != name:
        return
    if mode == "crash":
        if in_worker:
            os._exit(70)
        raise InjectedWorkerFault(
            f"injected crash for {name!r} (serial execution)"
        )
    if mode == "raise":
        raise InjectedWorkerFault(f"injected failure for {name!r}")
    if mode == "flaky":
        if not arg:
            raise ValueError(
                "flaky fault injection needs a marker path: "
                "SIEVESTORE_FAULT_INJECT=flaky:policy:/path/to/marker"
            )
        try:
            with open(arg, "x"):
                pass
        except FileExistsError:
            return  # already fired once; succeed from now on
        raise InjectedWorkerFault(f"injected one-shot failure for {name!r}")
    if mode == "hang":
        time.sleep(float(arg) if arg else 3600.0)
        return
    raise ValueError(f"unknown fault-injection mode {mode!r} in {FAULT_ENV_VAR}")


def _init_worker(trace_path: str, days: int, scale: float, seed: int) -> None:
    from repro.sim.experiment import context_for_trace

    global _WORKER_CONTEXT
    columns = ColumnarTrace.load_npz(trace_path)
    # Set once per worker process by the pool initializer; workers only
    # ever read it.  This is the sanctioned worker-global idiom.
    _WORKER_CONTEXT = context_for_trace(columns, days=days, scale=scale, seed=seed)  # sievelint: disable=SVL008 -- initializer-set worker global, read-only afterwards


def _checkpoint_meta(checkpoint_dir, name: str, checkpoint_every) -> Optional[dict]:
    """Per-task checkpoint manifest metadata (None when not checkpointing)."""
    if checkpoint_dir is None:
        return None
    return {
        "path": str(Path(checkpoint_dir) / f"{name}.ckpt"),
        "every": (
            checkpoint_every
            if checkpoint_every is not None
            else DEFAULT_CHECKPOINT_EVERY
        ),
    }


def _run_one(
    name: str,
    track_minutes: bool,
    fast_path: bool,
    fault_plan=None,
    epoch_seconds=None,
    checkpoint_dir=None,
    checkpoint_every=None,
    collect_metrics: bool = False,
):
    from repro.sim.experiment import run_policy

    assert _WORKER_CONTEXT is not None, "worker initializer did not run"
    # Warn-once state must not depend on what else ran in this worker
    # process (workers execute several tasks back to back).
    _engine._reset_fallback_warnings()
    _maybe_inject_fault(name, in_worker=True)
    meta = _checkpoint_meta(checkpoint_dir, name, checkpoint_every)
    snapshot = None
    started = time.perf_counter()
    if collect_metrics:
        from repro.obs.runtime import scoped_registry

        with scoped_registry() as obs_context:
            result = run_policy(
                name, _WORKER_CONTEXT, track_minutes=track_minutes,
                fast_path=fast_path, fault_plan=fault_plan,
                epoch_seconds=epoch_seconds,
                checkpoint_path=meta["path"] if meta else None,
                checkpoint_every=checkpoint_every,
            )
            snapshot = obs_context.registry.snapshot()
    else:
        result = run_policy(
            name, _WORKER_CONTEXT, track_minutes=track_minutes,
            fast_path=fast_path, fault_plan=fault_plan,
            epoch_seconds=epoch_seconds,
            checkpoint_path=meta["path"] if meta else None,
            checkpoint_every=checkpoint_every,
        )
    return name, os.getpid(), time.perf_counter() - started, result, snapshot


def default_jobs() -> int:
    """Worker count when the caller asks for 'all cores'.

    Prefers the process's scheduling affinity mask
    (``os.sched_getaffinity``) over ``os.cpu_count()``: in
    cgroup/affinity-limited containers and CI runners the machine may
    expose many more cores than this process is allowed to run on, and
    oversubscribing them just adds contention.  Falls back to
    ``cpu_count`` on platforms without affinity support (macOS,
    Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = len(getaffinity(0))
        except OSError:
            affinity = 0
        if affinity:
            return affinity
    return max(1, os.cpu_count() or 1)


@dataclass
class TaskRecord:
    """One suite task's execution record (a manifest row)."""

    policy: str
    outcome: str  # "ok" | "failed" | "timeout"
    engine: Optional[str]  # "fast" | "object"; None when the task failed
    wall_seconds: float
    retries: int
    worker_pid: Optional[int]
    executor: str  # "pool" | "serial" | "serial-fallback"
    error: Optional[str] = None
    #: fingerprint of the task's fault plan (None without a plan).
    fault_plan: Optional[str] = None
    #: checkpoint metadata ({"path", "every"}; None when not checkpointing).
    checkpoint: Optional[dict] = None
    #: JSON-safe metrics snapshot (manifest v3 only; None keeps the
    #: manifest byte-identical to v2).
    metrics: Optional[dict] = None

    def to_dict(self) -> dict:
        data = {
            "policy": self.policy,
            "outcome": self.outcome,
            "engine": self.engine,
            "wall_seconds": round(self.wall_seconds, 6),
            "retries": self.retries,
            "worker_pid": self.worker_pid,
            "executor": self.executor,
            "error": self.error,
            "fault_plan": self.fault_plan,
            "checkpoint": self.checkpoint,
        }
        if self.metrics is not None:
            data["metrics"] = self.metrics
        return data


@dataclass
class PolicyFailure:
    """Structured record of a policy run that could not be completed."""

    policy: str
    error_type: str
    message: str
    retries: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.policy}: {self.error_type}: {self.message} "
            f"(after {self.retries} retr{'y' if self.retries == 1 else 'ies'})"
        )


class SuiteRun(Mapping):
    """Results of one policy-suite run, with partial-failure visibility.

    Behaves as a read-only mapping ``{policy name -> SimulationResult}``
    over the *successful* runs (iteration order matches the requested
    order), so existing ``dict``-shaped callers keep working.  On top of
    that:

    * :attr:`failures` maps failed policy names to
      :class:`PolicyFailure` records — a failed task never discards the
      completed ones;
    * :attr:`manifest` is the JSON-serializable run manifest (one
      :class:`TaskRecord` row per task; see the README for the schema);
    * :attr:`metrics` is the suite's merged
      :class:`~repro.obs.metrics.MetricsSnapshot` when metrics
      collection was on (``None`` otherwise);
    * :attr:`ok` is True when every requested policy produced a result.
    """

    def __init__(
        self,
        results: "OrderedDict[str, SimulationResult]",
        failures: Dict[str, PolicyFailure],
        manifest: dict,
        metrics=None,
    ):
        self.results = results
        self.failures = failures
        self.manifest = manifest
        self.metrics = metrics

    def __getitem__(self, name: str) -> SimulationResult:
        return self.results[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        """True when no policy failed."""
        return not self.failures

    def save_manifest(self, path: Union[str, Path]) -> None:
        """Write the run manifest as indented JSON (atomically)."""
        _write_json_atomic(path, self.manifest)


def _build_manifest(
    requested: Sequence[str],
    names: Sequence[str],
    records: Dict[str, TaskRecord],
    jobs: int,
    track_minutes: bool,
    fast_path: bool,
    task_timeout: Optional[float],
    pool_broken: bool,
    wall_seconds: float,
    suite_metrics: Optional[dict] = None,
) -> dict:
    manifest = {
        "schema": (
            MANIFEST_SCHEMA_VERSION_METRICS
            if suite_metrics is not None
            else MANIFEST_SCHEMA_VERSION
        ),
        "requested": list(requested),
        "names": list(names),
        "jobs": jobs,
        "track_minutes": track_minutes,
        "fast_path": fast_path,
        "task_timeout": task_timeout,
        "pool_broken": pool_broken,
        "wall_seconds": round(wall_seconds, 6),
        "tasks": [records[name].to_dict() for name in names if name in records],
    }
    if suite_metrics is not None:
        manifest["metrics"] = suite_metrics
    return manifest


def _resolve_collect_metrics(collect_metrics: Optional[bool]) -> bool:
    """``None`` means "whatever the process-wide obs switch says"."""
    if collect_metrics is not None:
        return collect_metrics
    from repro.obs import runtime as obs_runtime

    return obs_runtime.enabled()


def _suite_observer(collect_metrics: bool):
    """Fresh suite-level registry, or ``None`` when metrics are off."""
    if not collect_metrics:
        return None
    from repro.obs.metrics import MetricsRegistry

    return MetricsRegistry()


#: Bounds for parent-side wait on one task's result (seconds).
_WAIT_BUCKETS = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0, 300.0, 1800.0,
)


def _note_task(
    suite_registry,
    record: TaskRecord,
    waited: Optional[float] = None,
    on_task_done=None,
) -> None:
    """Record one finished task in the suite registry + progress hook."""
    if suite_registry is not None:
        suite_registry.counter(
            "suite_tasks_total",
            "Suite tasks by outcome and executor",
            ("outcome", "executor"),
        ).inc(outcome=record.outcome, executor=record.executor)
        if record.retries:
            suite_registry.counter(
                "suite_retries_total",
                "Task retries (second submissions)",
                ("policy",),
            ).inc(record.retries, policy=record.policy)
        if waited is not None:
            suite_registry.histogram(
                "suite_task_wait_seconds",
                "Parent wall time waiting on one task's result",
                ("executor",),
                buckets=_WAIT_BUCKETS,
            ).observe(waited, executor=record.executor)
    if on_task_done is not None:
        on_task_done(record)


def _dedupe(names: Sequence[str]) -> List[str]:
    """Unique names, first-occurrence order (duplicate work costs the
    same result twice under dict keying — run each config once)."""
    return list(dict.fromkeys(names))


def _run_serial_task(
    name: str,
    ctx,
    track_minutes: bool,
    fast_path: bool,
    executor: str,
    attempts: int,
    records: Dict[str, TaskRecord],
    results: Dict[str, SimulationResult],
    failures: Dict[str, PolicyFailure],
    fault_plan=None,
    epoch_seconds=None,
    checkpoint_dir=None,
    checkpoint_every=None,
    collect_metrics: bool = False,
    suite_registry=None,
    on_task_done=None,
    progress_every=None,
    progress_hook=None,
) -> None:
    """Run one task in-process, recording outcome like a pool task."""
    from repro.sim.experiment import run_policy

    # Same per-task warn-once scope as worker execution.
    _engine._reset_fallback_warnings()
    plan_fp = fault_plan.fingerprint() if fault_plan is not None else None
    meta = _checkpoint_meta(checkpoint_dir, name, checkpoint_every)
    snapshot = None
    started = time.perf_counter()
    try:
        _maybe_inject_fault(name, in_worker=False)
        if collect_metrics:
            from repro.obs.runtime import scoped_registry

            with scoped_registry() as obs_context:
                result = run_policy(
                    name, ctx, track_minutes=track_minutes,
                    fast_path=fast_path, fault_plan=fault_plan,
                    epoch_seconds=epoch_seconds,
                    checkpoint_path=meta["path"] if meta else None,
                    checkpoint_every=checkpoint_every,
                    progress_every=progress_every,
                    progress_hook=progress_hook,
                )
                snapshot = obs_context.registry.snapshot()
        else:
            result = run_policy(
                name, ctx, track_minutes=track_minutes, fast_path=fast_path,
                fault_plan=fault_plan, epoch_seconds=epoch_seconds,
                checkpoint_path=meta["path"] if meta else None,
                checkpoint_every=checkpoint_every,
                progress_every=progress_every,
                progress_hook=progress_hook,
            )
    except Exception as exc:
        wall = time.perf_counter() - started
        records[name] = TaskRecord(
            policy=name,
            outcome="failed",
            engine=None,
            wall_seconds=wall,
            retries=attempts - 1,
            worker_pid=os.getpid(),
            executor=executor,
            error=f"{type(exc).__name__}: {exc}",
            fault_plan=plan_fp,
            checkpoint=meta,
        )
        failures[name] = PolicyFailure(
            policy=name,
            error_type=type(exc).__name__,
            message=str(exc),
            retries=attempts - 1,
        )
    else:
        wall = time.perf_counter() - started
        results[name] = result
        records[name] = TaskRecord(
            policy=name,
            outcome="ok",
            engine=result.engine,
            wall_seconds=wall,
            retries=attempts - 1,
            worker_pid=os.getpid(),
            executor=executor,
            fault_plan=plan_fp,
            checkpoint=meta,
            metrics=snapshot.to_jsonable() if snapshot is not None else None,
        )
        if snapshot is not None and suite_registry is not None:
            suite_registry.merge_snapshot(snapshot)
    _note_task(
        suite_registry,
        records[name],
        waited=records[name].wall_seconds,
        on_task_done=on_task_done,
    )


def _finish_suite_metrics(suite_registry):
    """Snapshot the suite registry and fold it into the global one."""
    if suite_registry is None:
        return None
    snapshot = suite_registry.snapshot()
    from repro.obs import runtime as obs_runtime

    parent = obs_runtime.get_registry()
    if parent is not None:
        parent.merge_snapshot(snapshot)
    return snapshot


def run_suite_serial(
    ctx,
    names: Sequence[str],
    track_minutes: bool = True,
    fast_path: bool = False,
    fault_plan=None,
    epoch_seconds=None,
    checkpoint_dir=None,
    checkpoint_every=None,
    collect_metrics: Optional[bool] = None,
    on_task_done=None,
    progress_every=None,
    progress_hook=None,
) -> SuiteRun:
    """In-process reference execution of a policy suite.

    Same partial-result semantics and manifest as
    :func:`run_suite_parallel` (executor ``"serial"``, no retries), so
    callers can treat ``jobs=1`` and ``jobs=N`` runs uniformly.
    ``collect_metrics`` / ``on_task_done`` also behave identically.
    ``progress_every`` / ``progress_hook`` (serial-only: hooks cannot
    cross the process boundary) forward to each run's engine loop.
    """
    started = time.perf_counter()
    requested = list(names)
    unique = _dedupe(requested)
    collect = _resolve_collect_metrics(collect_metrics)
    suite_registry = _suite_observer(collect)
    records: Dict[str, TaskRecord] = {}
    results: Dict[str, SimulationResult] = {}
    failures: Dict[str, PolicyFailure] = {}
    for name in unique:
        _run_serial_task(
            name, ctx, track_minutes, fast_path,
            executor="serial", attempts=1,
            records=records, results=results, failures=failures,
            fault_plan=fault_plan, epoch_seconds=epoch_seconds,
            checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
            collect_metrics=collect, suite_registry=suite_registry,
            on_task_done=on_task_done,
            progress_every=progress_every, progress_hook=progress_hook,
        )
    snapshot = _finish_suite_metrics(suite_registry)
    manifest = _build_manifest(
        requested, unique, records,
        jobs=1, track_minutes=track_minutes, fast_path=fast_path,
        task_timeout=None, pool_broken=False,
        wall_seconds=time.perf_counter() - started,
        suite_metrics=snapshot.to_jsonable() if snapshot is not None else None,
    )
    ordered = OrderedDict((n, results[n]) for n in unique if n in results)
    return SuiteRun(ordered, failures, manifest, metrics=snapshot)


def run_suite_parallel(
    ctx,
    names: Sequence[str],
    track_minutes: bool = True,
    fast_path: bool = True,
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    fault_plan=None,
    epoch_seconds=None,
    checkpoint_dir=None,
    checkpoint_every=None,
    collect_metrics: Optional[bool] = None,
    on_task_done=None,
) -> SuiteRun:
    """Run the named policy configurations across worker processes.

    Args:
        ctx: the parent's :class:`ExperimentContext`; only its columnar
            trace and scalar parameters cross the process boundary.
        names: policy configuration keys (see
            :func:`repro.sim.experiment.build_policy`).  Duplicates are
            deduplicated up front (first-occurrence order); an empty
            sequence returns an empty :class:`SuiteRun` without
            spinning up a pool.
        track_minutes: forwarded to every run.
        fast_path: forwarded to every run (defaults on — the whole
            point of fanning out is throughput).
        jobs: worker processes; ``None`` uses :func:`default_jobs`
            (affinity-aware core count).
        task_timeout: seconds to wait for one task's result before
            retrying it (and, on a second timeout, recording a
            ``"timeout"`` failure).  ``None`` waits forever.
        fault_plan: a :class:`~repro.faults.plan.FaultPlan` applied to
            every run (picklable; its fingerprint is recorded per task).
        checkpoint_dir: when set, each task writes crash-consistent
            checkpoints to ``<dir>/<policy>.ckpt`` (metadata recorded
            per task in the manifest).
        checkpoint_every: requests between checkpoints (engine default
            when None).
        collect_metrics: gather per-task metrics snapshots (each task
            runs under a fresh scoped registry, snapshots ship back and
            merge) and emit a v3 manifest.  ``None`` (default) follows
            the process-wide observability switch, so runs with
            observability off stay byte-identical to v2.
        on_task_done: optional callable receiving each finished task's
            :class:`TaskRecord` as it completes (CLI progress).

    Returns a :class:`SuiteRun`: a mapping of successful results in
    ``names`` order, plus :attr:`~SuiteRun.failures` and the run
    :attr:`~SuiteRun.manifest`.  Worker death, task exceptions, and
    timeouts degrade (retry once, then serial fallback / failure
    records) instead of discarding completed results.
    """
    started = time.perf_counter()
    requested = list(names)
    unique = _dedupe(requested)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    collect = _resolve_collect_metrics(collect_metrics)
    suite_registry = _suite_observer(collect)
    if not unique:
        snapshot = _finish_suite_metrics(suite_registry)
        manifest = _build_manifest(
            requested, unique, {}, jobs=jobs,
            track_minutes=track_minutes, fast_path=fast_path,
            task_timeout=task_timeout, pool_broken=False,
            wall_seconds=time.perf_counter() - started,
            suite_metrics=(
                snapshot.to_jsonable() if snapshot is not None else None
            ),
        )
        return SuiteRun(OrderedDict(), {}, manifest, metrics=snapshot)

    records: Dict[str, TaskRecord] = {}
    results: Dict[str, SimulationResult] = {}
    failures: Dict[str, PolicyFailure] = {}
    attempts: Dict[str, int] = {name: 0 for name in unique}
    serial_queue: List[str] = []
    pool_broken = False
    timed_out = False
    plan_fp = fault_plan.fingerprint() if fault_plan is not None else None

    with tempfile.TemporaryDirectory(prefix="sievestore-suite-") as tmpdir:
        trace_path = os.path.join(tmpdir, "trace.npz")
        ctx.columnar_trace().save_npz(trace_path)
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(unique)),
            initializer=_init_worker,
            initargs=(trace_path, ctx.days, ctx.scale, ctx.seed),
        )
        try:
            futures = {}
            try:
                for name in unique:
                    futures[name] = pool.submit(
                        _run_one, name, track_minutes, fast_path,
                        fault_plan, epoch_seconds,
                        checkpoint_dir, checkpoint_every, collect,
                    )
                    attempts[name] += 1
            except BrokenProcessPool:
                pool_broken = True

            def resubmit(name: str):
                """One bounded retry through the pool; None if spent/broken."""
                nonlocal pool_broken
                if pool_broken or attempts[name] >= MAX_ATTEMPTS:
                    return None
                try:
                    future = pool.submit(
                        _run_one, name, track_minutes, fast_path,
                        fault_plan, epoch_seconds,
                        checkpoint_dir, checkpoint_every, collect,
                    )
                except BrokenProcessPool:
                    pool_broken = True
                    return None
                attempts[name] += 1
                return future

            for name in unique:
                if pool_broken:
                    serial_queue.append(name)
                    continue
                future = futures.get(name)
                if future is None:
                    serial_queue.append(name)
                    continue
                collect_started = time.perf_counter()
                while True:
                    try:
                        _rname, pid, wall, result, snapshot = future.result(
                            timeout=task_timeout
                        )
                    except _FuturesTimeout:
                        timed_out = True
                        future.cancel()
                        retry = resubmit(name)
                        if retry is not None:
                            future = retry
                            collect_started = time.perf_counter()
                            continue
                        if pool_broken and attempts[name] < MAX_ATTEMPTS:
                            serial_queue.append(name)
                            break
                        waited = time.perf_counter() - collect_started
                        records[name] = TaskRecord(
                            policy=name, outcome="timeout", engine=None,
                            wall_seconds=waited,
                            retries=attempts[name] - 1, worker_pid=None,
                            executor="pool",
                            error=f"task exceeded {task_timeout}s timeout",
                            fault_plan=plan_fp,
                            checkpoint=_checkpoint_meta(
                                checkpoint_dir, name, checkpoint_every
                            ),
                        )
                        failures[name] = PolicyFailure(
                            policy=name, error_type="TimeoutError",
                            message=f"task exceeded {task_timeout}s timeout",
                            retries=attempts[name] - 1,
                        )
                        _note_task(
                            suite_registry, records[name],
                            waited=waited, on_task_done=on_task_done,
                        )
                        break
                    except BrokenProcessPool:
                        # The worker died (or the pool collapsed around
                        # this future); the task's retry — and every
                        # later task — runs serially in-process.
                        pool_broken = True
                        serial_queue.append(name)
                        break
                    except Exception as exc:
                        retry = resubmit(name)
                        if retry is not None:
                            future = retry
                            collect_started = time.perf_counter()
                            continue
                        if pool_broken and attempts[name] < MAX_ATTEMPTS:
                            serial_queue.append(name)
                            break
                        waited = time.perf_counter() - collect_started
                        records[name] = TaskRecord(
                            policy=name, outcome="failed", engine=None,
                            wall_seconds=waited,
                            retries=attempts[name] - 1, worker_pid=None,
                            executor="pool",
                            error=f"{type(exc).__name__}: {exc}",
                            fault_plan=plan_fp,
                            checkpoint=_checkpoint_meta(
                                checkpoint_dir, name, checkpoint_every
                            ),
                        )
                        failures[name] = PolicyFailure(
                            policy=name, error_type=type(exc).__name__,
                            message=str(exc), retries=attempts[name] - 1,
                        )
                        _note_task(
                            suite_registry, records[name],
                            waited=waited, on_task_done=on_task_done,
                        )
                        break
                    else:
                        results[name] = result
                        records[name] = TaskRecord(
                            policy=name, outcome="ok", engine=result.engine,
                            wall_seconds=wall, retries=attempts[name] - 1,
                            worker_pid=pid, executor="pool",
                            fault_plan=plan_fp,
                            checkpoint=_checkpoint_meta(
                                checkpoint_dir, name, checkpoint_every
                            ),
                            metrics=(
                                snapshot.to_jsonable()
                                if snapshot is not None
                                else None
                            ),
                        )
                        if snapshot is not None and suite_registry is not None:
                            suite_registry.merge_snapshot(snapshot)
                        _note_task(
                            suite_registry, records[name],
                            waited=time.perf_counter() - collect_started,
                            on_task_done=on_task_done,
                        )
                        break
        finally:
            # A timed-out task is still running in its worker; don't
            # block shutdown on it (the zombie exits when it finishes).
            pool.shutdown(wait=not timed_out, cancel_futures=True)

    if serial_queue:
        warnings.warn(
            f"worker pool broke; running {len(serial_queue)} remaining "
            f"polic{'y' if len(serial_queue) == 1 else 'ies'} serially "
            f"in-process: {', '.join(serial_queue)}",
            RuntimeWarning,
            stacklevel=2,
        )
        for name in serial_queue:
            attempts[name] += 1
            _run_serial_task(
                name, ctx, track_minutes, fast_path,
                executor="serial-fallback", attempts=attempts[name],
                records=records, results=results, failures=failures,
                fault_plan=fault_plan, epoch_seconds=epoch_seconds,
                checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
                collect_metrics=collect, suite_registry=suite_registry,
                on_task_done=on_task_done,
            )

    snapshot = _finish_suite_metrics(suite_registry)
    manifest = _build_manifest(
        requested, unique, records, jobs=jobs,
        track_minutes=track_minutes, fast_path=fast_path,
        task_timeout=task_timeout, pool_broken=pool_broken,
        wall_seconds=time.perf_counter() - started,
        suite_metrics=snapshot.to_jsonable() if snapshot is not None else None,
    )
    ordered = OrderedDict((n, results[n]) for n in unique if n in results)
    return SuiteRun(ordered, failures, manifest, metrics=snapshot)


# ---------------------------------------------------------------------------
# Shard-level replay: one policy, the trace partitioned across workers.
# ---------------------------------------------------------------------------

#: Bump on sharded-replay manifest layout changes; consumers refuse
#: unknown versions.
SHARD_MANIFEST_VERSION = 1

#: Per-process segment store, installed by the shard-pool initializer.
#: Workers open segments by path — the parent never pickles trace rows.
_SHARD_STORE = None


def shard_task_names(shards: int) -> List[str]:
    """Deterministic task names (``shard-0`` … ``shard-N-1``).

    These are the names :data:`FAULT_ENV_VAR` keys on for sharded
    replay (``SIEVESTORE_FAULT_INJECT=flaky:shard-2:/tmp/marker``) and
    the stems of per-shard checkpoint files.
    """
    return [f"shard-{index}" for index in range(shards)]


def _init_shard_worker(store_dir: str) -> None:
    from repro.traces.segments import SegmentStore

    global _SHARD_STORE
    # Set once per worker process by the pool initializer; workers only
    # ever read it.  This is the sanctioned worker-global idiom.
    _SHARD_STORE = SegmentStore.open(store_dir)  # sievelint: disable=SVL008 -- initializer-set worker global, read-only afterwards


def _replay_shard(
    store,
    shard: int,
    shards: int,
    policy_name: str,
    days: int,
    scale: float,
    seed: int,
    track_minutes: bool,
    fast_path: bool,
    chunk_rows: Optional[int],
    epoch_seconds: Optional[float],
    checkpoint_path: Optional[str],
    checkpoint_every: Optional[int],
    progress_every: Optional[int] = None,
    progress_hook=None,
) -> SimulationResult:
    """Replay one shard of the ensemble, resuming from its checkpoint.

    Each shard is a closed sub-ensemble (every block of a server lives
    on exactly one shard), provisioned at ``scale / shards`` — the same
    per-server cache share as the unsharded configuration, so
    ``shards=1`` reproduces the unsharded run bit for bit.  When the
    shard's checkpoint file already exists — a retried task, or a whole
    coordinator rerun after a crash — the run resumes from it instead
    of starting over; an unusable checkpoint falls back to a fresh run
    with a warning rather than failing the shard.
    """
    from repro.sim.experiment import ExperimentContext, build_policy
    from repro.sim.serialize import CheckpointError

    view = store.shard(shard, shards)
    if checkpoint_path is not None and Path(checkpoint_path).exists():
        try:
            return _engine.resume_simulation(
                checkpoint_path,
                view,
                checkpoint_path=checkpoint_path,
                chunk_rows=chunk_rows,
                progress_every=progress_every,
                progress_hook=progress_hook,
            )
        except CheckpointError as exc:
            warnings.warn(
                f"shard-{shard} checkpoint {checkpoint_path} is unusable "
                f"({exc}); restarting the shard from the beginning",
                RuntimeWarning,
                stacklevel=2,
            )
    ctx = ExperimentContext(
        trace=view,
        days=days,
        scale=scale / shards,
        daily_counts=view.daily_block_counts(days, chunk_rows=chunk_rows),
        seed=seed,
    )
    policy, capacity = build_policy(policy_name, ctx)
    extra = {}
    if epoch_seconds is not None:
        extra["epoch_seconds"] = epoch_seconds
    return _engine.simulate(
        view,
        policy,
        capacity_blocks=capacity,
        days=days,
        track_minutes=track_minutes,
        fast_path=fast_path,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        label=policy_name,
        chunk_rows=chunk_rows,
        progress_every=progress_every,
        progress_hook=progress_hook,
        **extra,
    )


def _run_one_shard(
    shard: int,
    shards: int,
    policy_name: str,
    days: int,
    scale: float,
    seed: int,
    track_minutes: bool,
    fast_path: bool,
    chunk_rows: Optional[int],
    epoch_seconds: Optional[float],
    checkpoint_dir,
    checkpoint_every: Optional[int],
    collect_metrics: bool,
):
    """Pool task: replay one shard against the worker's open store.

    Ships back only the per-shard :class:`CacheStats` and engine name —
    the merged statistics are the product; per-shard cache/policy
    objects never cross the process boundary.
    """
    assert _SHARD_STORE is not None, "shard worker initializer did not run"
    name = f"shard-{shard}"
    _engine._reset_fallback_warnings()
    _maybe_inject_fault(name, in_worker=True)
    meta = _checkpoint_meta(checkpoint_dir, name, checkpoint_every)
    snapshot = None
    started = time.perf_counter()
    if collect_metrics:
        from repro.obs.runtime import scoped_registry

        with scoped_registry() as obs_context:
            result = _replay_shard(
                _SHARD_STORE, shard, shards, policy_name, days, scale, seed,
                track_minutes, fast_path, chunk_rows, epoch_seconds,
                meta["path"] if meta else None, checkpoint_every,
            )
            snapshot = obs_context.registry.snapshot()
    else:
        result = _replay_shard(
            _SHARD_STORE, shard, shards, policy_name, days, scale, seed,
            track_minutes, fast_path, chunk_rows, epoch_seconds,
            meta["path"] if meta else None, checkpoint_every,
        )
    wall = time.perf_counter() - started
    return name, os.getpid(), wall, result.stats, result.engine, snapshot


def _run_shard_serial(
    store,
    shard: int,
    shards: int,
    policy_name: str,
    days: int,
    scale: float,
    seed: int,
    track_minutes: bool,
    fast_path: bool,
    chunk_rows: Optional[int],
    epoch_seconds: Optional[float],
    checkpoint_dir,
    checkpoint_every: Optional[int],
    executor: str,
    attempts: int,
    records: Dict[str, TaskRecord],
    shard_stats: Dict[str, "CacheStats"],
    failures: Dict[str, PolicyFailure],
    collect_metrics: bool = False,
    suite_registry=None,
    on_task_done=None,
    progress_every=None,
    progress_hook=None,
) -> None:
    """Run one shard in-process, recording outcome like a pool task."""
    name = f"shard-{shard}"
    _engine._reset_fallback_warnings()
    meta = _checkpoint_meta(checkpoint_dir, name, checkpoint_every)
    snapshot = None
    started = time.perf_counter()
    try:
        _maybe_inject_fault(name, in_worker=False)
        if collect_metrics:
            from repro.obs.runtime import scoped_registry

            with scoped_registry() as obs_context:
                result = _replay_shard(
                    store, shard, shards, policy_name, days, scale, seed,
                    track_minutes, fast_path, chunk_rows, epoch_seconds,
                    meta["path"] if meta else None, checkpoint_every,
                    progress_every=progress_every, progress_hook=progress_hook,
                )
                snapshot = obs_context.registry.snapshot()
        else:
            result = _replay_shard(
                store, shard, shards, policy_name, days, scale, seed,
                track_minutes, fast_path, chunk_rows, epoch_seconds,
                meta["path"] if meta else None, checkpoint_every,
                progress_every=progress_every, progress_hook=progress_hook,
            )
    except Exception as exc:
        wall = time.perf_counter() - started
        records[name] = TaskRecord(
            policy=name,
            outcome="failed",
            engine=None,
            wall_seconds=wall,
            retries=attempts - 1,
            worker_pid=os.getpid(),
            executor=executor,
            error=f"{type(exc).__name__}: {exc}",
            checkpoint=meta,
        )
        failures[name] = PolicyFailure(
            policy=name,
            error_type=type(exc).__name__,
            message=str(exc),
            retries=attempts - 1,
        )
    else:
        wall = time.perf_counter() - started
        shard_stats[name] = result.stats
        records[name] = TaskRecord(
            policy=name,
            outcome="ok",
            engine=result.engine,
            wall_seconds=wall,
            retries=attempts - 1,
            worker_pid=os.getpid(),
            executor=executor,
            checkpoint=meta,
            metrics=snapshot.to_jsonable() if snapshot is not None else None,
        )
        if snapshot is not None and suite_registry is not None:
            suite_registry.merge_snapshot(snapshot)
    _note_task(
        suite_registry,
        records[name],
        waited=records[name].wall_seconds,
        on_task_done=on_task_done,
    )


class ShardedReplayRun:
    """Result of one sharded replay: merged statistics plus provenance.

    * :attr:`stats` — the ensemble-level :class:`CacheStats`, merged
      from every shard via :meth:`CacheStats.merged`; ``None`` when any
      shard failed (partial statistics would be silently wrong).
    * :attr:`shard_stats` — per-shard statistics in shard order
      (successful shards only), for per-partition inspection.
    * :attr:`failures` — task-name-keyed :class:`PolicyFailure` records.
    * :attr:`manifest` — JSON-serializable run manifest (schema
      :data:`SHARD_MANIFEST_VERSION`).
    * :attr:`metrics` — merged metrics snapshot when collection was on.
    """

    def __init__(
        self,
        policy_name: str,
        stats,
        shard_stats: "OrderedDict[str, CacheStats]",
        failures: Dict[str, PolicyFailure],
        manifest: dict,
        metrics=None,
    ):
        self.policy_name = policy_name
        self.stats = stats
        self.shard_stats = shard_stats
        self.failures = failures
        self.manifest = manifest
        self.metrics = metrics

    @property
    def ok(self) -> bool:
        """True when every shard completed and the merge happened."""
        return not self.failures and self.stats is not None

    def save_manifest(self, path: Union[str, Path]) -> None:
        """Write the run manifest as indented JSON (atomically)."""
        _write_json_atomic(path, self.manifest)


def _build_shard_manifest(
    policy_name: str,
    shards: int,
    names: Sequence[str],
    records: Dict[str, TaskRecord],
    jobs: int,
    track_minutes: bool,
    fast_path: bool,
    chunk_rows: Optional[int],
    task_timeout: Optional[float],
    pool_broken: bool,
    wall_seconds: float,
    suite_metrics: Optional[dict] = None,
) -> dict:
    manifest = {
        "schema": SHARD_MANIFEST_VERSION,
        "kind": "sharded-replay",
        "policy": policy_name,
        "shards": shards,
        "names": list(names),
        "jobs": jobs,
        "track_minutes": track_minutes,
        "fast_path": fast_path,
        "chunk_rows": chunk_rows,
        "task_timeout": task_timeout,
        "pool_broken": pool_broken,
        "wall_seconds": round(wall_seconds, 6),
        "tasks": [records[name].to_dict() for name in names if name in records],
    }
    if suite_metrics is not None:
        manifest["metrics"] = suite_metrics
    return manifest


def run_sharded_replay(
    store,
    policy_name: str,
    days: int,
    scale: float,
    shards: int,
    seed: int = 0,
    jobs: Optional[int] = None,
    track_minutes: bool = True,
    fast_path: bool = True,
    chunk_rows: Optional[int] = None,
    task_timeout: Optional[float] = None,
    epoch_seconds: Optional[float] = None,
    checkpoint_dir=None,
    checkpoint_every: Optional[int] = None,
    collect_metrics: Optional[bool] = None,
    on_task_done=None,
) -> ShardedReplayRun:
    """Replay **one** policy with the ensemble partitioned across workers.

    The dual of :func:`run_suite_parallel`: instead of many policies
    over one shared trace, one policy over many disjoint shards of the
    trace.  The coordinator slices the segment store by server id
    (:func:`repro.traces.segments.shard_of_servers` — every block of a
    server lands on exactly one shard, so shards are closed
    subsystems), fans the shards across worker processes that open the
    segment files by path (the parent never pickles a single trace
    row), and merges the per-shard :class:`CacheStats` with
    :meth:`CacheStats.merged`.

    Each shard simulates an independent appliance provisioned at
    ``scale / shards``, so ``shards=1`` is bit-identical to an
    unsharded :func:`~repro.sim.engine.simulate` run and a sharded run
    models a partitioned ensemble of ``shards`` smaller caches.
    ``jobs=1`` executes the same shards serially in-process —
    byte-identical merged statistics, no pool — which is what CI
    compares fault-injected pool runs against.

    Failure handling matches the policy suite: one bounded retry per
    shard (a retried shard **resumes from its checkpoint** when
    ``checkpoint_dir`` is set, re-replaying only rows past the last
    checkpoint), timeout records after ``task_timeout``, and
    ``BrokenProcessPool`` degrades to in-process serial fallback for
    the not-yet-collected shards.  ``SIEVESTORE_FAULT_INJECT`` keys on
    task names ``shard-0`` … ``shard-N-1``.
    """
    from repro.cache.stats import CacheStats
    from repro.traces.segments import SegmentStore

    started = time.perf_counter()
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if not isinstance(store, SegmentStore):
        store = SegmentStore.open(store)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    names = shard_task_names(shards)
    collect = _resolve_collect_metrics(collect_metrics)
    suite_registry = _suite_observer(collect)

    records: Dict[str, TaskRecord] = {}
    shard_stats: Dict[str, CacheStats] = {}
    failures: Dict[str, PolicyFailure] = {}
    attempts: Dict[str, int] = {name: 0 for name in names}
    serial_queue: List[int] = []
    pool_broken = False
    timed_out = False

    def shard_args(shard: int) -> tuple:
        return (
            shard, shards, policy_name, days, scale, seed,
            track_minutes, fast_path, chunk_rows, epoch_seconds,
            checkpoint_dir, checkpoint_every, collect,
        )

    if jobs == 1:
        for shard in range(shards):
            attempts[names[shard]] += 1
            _run_shard_serial(
                store, shard, shards, policy_name, days, scale, seed,
                track_minutes, fast_path, chunk_rows, epoch_seconds,
                checkpoint_dir, checkpoint_every,
                executor="serial", attempts=attempts[names[shard]],
                records=records, shard_stats=shard_stats, failures=failures,
                collect_metrics=collect, suite_registry=suite_registry,
                on_task_done=on_task_done,
            )
    else:
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, shards),
            initializer=_init_shard_worker,
            initargs=(str(store.directory),),
        )
        try:
            futures = {}
            try:
                for shard in range(shards):
                    futures[names[shard]] = pool.submit(
                        _run_one_shard, *shard_args(shard)
                    )
                    attempts[names[shard]] += 1
            except BrokenProcessPool:
                pool_broken = True

            def resubmit(shard: int):
                """One bounded retry through the pool; None if spent/broken."""
                nonlocal pool_broken
                name = names[shard]
                if pool_broken or attempts[name] >= MAX_ATTEMPTS:
                    return None
                try:
                    future = pool.submit(_run_one_shard, *shard_args(shard))
                except BrokenProcessPool:
                    pool_broken = True
                    return None
                attempts[name] += 1
                return future

            for shard in range(shards):
                name = names[shard]
                if pool_broken:
                    serial_queue.append(shard)
                    continue
                future = futures.get(name)
                if future is None:
                    serial_queue.append(shard)
                    continue
                collect_started = time.perf_counter()
                while True:
                    try:
                        _rname, pid, wall, stats, engine, snapshot = (
                            future.result(timeout=task_timeout)
                        )
                    except _FuturesTimeout:
                        timed_out = True
                        future.cancel()
                        retry = resubmit(shard)
                        if retry is not None:
                            future = retry
                            collect_started = time.perf_counter()
                            continue
                        if pool_broken and attempts[name] < MAX_ATTEMPTS:
                            serial_queue.append(shard)
                            break
                        waited = time.perf_counter() - collect_started
                        records[name] = TaskRecord(
                            policy=name, outcome="timeout", engine=None,
                            wall_seconds=waited,
                            retries=attempts[name] - 1, worker_pid=None,
                            executor="pool",
                            error=f"task exceeded {task_timeout}s timeout",
                            checkpoint=_checkpoint_meta(
                                checkpoint_dir, name, checkpoint_every
                            ),
                        )
                        failures[name] = PolicyFailure(
                            policy=name, error_type="TimeoutError",
                            message=f"task exceeded {task_timeout}s timeout",
                            retries=attempts[name] - 1,
                        )
                        _note_task(
                            suite_registry, records[name],
                            waited=waited, on_task_done=on_task_done,
                        )
                        break
                    except BrokenProcessPool:
                        pool_broken = True
                        serial_queue.append(shard)
                        break
                    except Exception as exc:
                        retry = resubmit(shard)
                        if retry is not None:
                            future = retry
                            collect_started = time.perf_counter()
                            continue
                        if pool_broken and attempts[name] < MAX_ATTEMPTS:
                            serial_queue.append(shard)
                            break
                        waited = time.perf_counter() - collect_started
                        records[name] = TaskRecord(
                            policy=name, outcome="failed", engine=None,
                            wall_seconds=waited,
                            retries=attempts[name] - 1, worker_pid=None,
                            executor="pool",
                            error=f"{type(exc).__name__}: {exc}",
                            checkpoint=_checkpoint_meta(
                                checkpoint_dir, name, checkpoint_every
                            ),
                        )
                        failures[name] = PolicyFailure(
                            policy=name, error_type=type(exc).__name__,
                            message=str(exc), retries=attempts[name] - 1,
                        )
                        _note_task(
                            suite_registry, records[name],
                            waited=waited, on_task_done=on_task_done,
                        )
                        break
                    else:
                        shard_stats[name] = stats
                        records[name] = TaskRecord(
                            policy=name, outcome="ok", engine=engine,
                            wall_seconds=wall, retries=attempts[name] - 1,
                            worker_pid=pid, executor="pool",
                            checkpoint=_checkpoint_meta(
                                checkpoint_dir, name, checkpoint_every
                            ),
                            metrics=(
                                snapshot.to_jsonable()
                                if snapshot is not None
                                else None
                            ),
                        )
                        if snapshot is not None and suite_registry is not None:
                            suite_registry.merge_snapshot(snapshot)
                        _note_task(
                            suite_registry, records[name],
                            waited=time.perf_counter() - collect_started,
                            on_task_done=on_task_done,
                        )
                        break
        finally:
            pool.shutdown(wait=not timed_out, cancel_futures=True)

    if serial_queue:
        warnings.warn(
            f"worker pool broke; running {len(serial_queue)} remaining "
            f"shard{'' if len(serial_queue) == 1 else 's'} serially "
            f"in-process: {', '.join(names[s] for s in serial_queue)}",
            RuntimeWarning,
            stacklevel=2,
        )
        for shard in serial_queue:
            attempts[names[shard]] += 1
            _run_shard_serial(
                store, shard, shards, policy_name, days, scale, seed,
                track_minutes, fast_path, chunk_rows, epoch_seconds,
                checkpoint_dir, checkpoint_every,
                executor="serial-fallback", attempts=attempts[names[shard]],
                records=records, shard_stats=shard_stats, failures=failures,
                collect_metrics=collect, suite_registry=suite_registry,
                on_task_done=on_task_done,
            )

    snapshot = _finish_suite_metrics(suite_registry)
    manifest = _build_shard_manifest(
        policy_name, shards, names, records, jobs=jobs,
        track_minutes=track_minutes, fast_path=fast_path,
        chunk_rows=chunk_rows, task_timeout=task_timeout,
        pool_broken=pool_broken,
        wall_seconds=time.perf_counter() - started,
        suite_metrics=snapshot.to_jsonable() if snapshot is not None else None,
    )
    ordered = OrderedDict(
        (name, shard_stats[name]) for name in names if name in shard_stats
    )
    merged = (
        CacheStats.merged(list(ordered.values()))
        if len(ordered) == shards
        else None
    )
    return ShardedReplayRun(
        policy_name, merged, ordered, failures, manifest, metrics=snapshot
    )
