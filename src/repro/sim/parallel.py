"""Parallel policy-suite execution over one shared columnar trace.

The Figure 5 suite replays the *same* trace through nine independent
policy configurations; nothing flows between the runs, so they
parallelize perfectly.  This module fans the runs across
``concurrent.futures`` worker processes:

* the parent serializes the columnar trace once to a temporary ``.npz``
  file (a compact binary write, far cheaper than pickling object
  traces per task);
* each worker's initializer loads the file once and rebuilds the
  :class:`~repro.sim.experiment.ExperimentContext` — per-day block
  counts are recomputed vectorized from the columns, which the test
  suite asserts is identical to the reference computation;
* each task runs one policy and pickles its full
  :class:`~repro.sim.engine.SimulationResult` back (benchmarks inspect
  ``result.policy`` and ``result.cache``, not just the stats).

Results are deterministic and equal to a serial run: every worker sees
the same trace bytes, the same seeds, and the same oracle inputs.
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence

from repro.sim.engine import SimulationResult
from repro.traces.columnar import ColumnarTrace

#: Per-process simulation context, installed by the pool initializer.
_WORKER_CONTEXT = None


def _init_worker(trace_path: str, days: int, scale: float, seed: int) -> None:
    from repro.sim.experiment import context_for_trace

    global _WORKER_CONTEXT
    columns = ColumnarTrace.load_npz(trace_path)
    _WORKER_CONTEXT = context_for_trace(columns, days=days, scale=scale, seed=seed)


def _run_one(name: str, track_minutes: bool, fast_path: bool):
    from repro.sim.experiment import run_policy

    assert _WORKER_CONTEXT is not None, "worker initializer did not run"
    return name, run_policy(
        name, _WORKER_CONTEXT, track_minutes=track_minutes, fast_path=fast_path
    )


def default_jobs() -> int:
    """Worker count when the caller asks for 'all cores'."""
    return max(1, os.cpu_count() or 1)


def run_suite_parallel(
    ctx,
    names: Sequence[str],
    track_minutes: bool = True,
    fast_path: bool = True,
    jobs: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Run the named policy configurations across worker processes.

    Args:
        ctx: the parent's :class:`ExperimentContext`; only its columnar
            trace and scalar parameters cross the process boundary.
        names: policy configuration keys (see
            :func:`repro.sim.experiment.build_policy`).
        track_minutes: forwarded to every run.
        fast_path: forwarded to every run (defaults on — the whole
            point of fanning out is throughput).
        jobs: worker processes; ``None`` uses all cores.

    Returns results keyed by name, in ``names`` order.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    with tempfile.TemporaryDirectory(prefix="sievestore-suite-") as tmpdir:
        trace_path = os.path.join(tmpdir, "trace.npz")
        ctx.columnar_trace().save_npz(trace_path)
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(names)) or 1,
            initializer=_init_worker,
            initargs=(trace_path, ctx.days, ctx.scale, ctx.seed),
        ) as pool:
            futures = [
                pool.submit(_run_one, name, track_minutes, fast_path)
                for name in names
            ]
            collected = dict(future.result() for future in futures)
    return {name: collected[name] for name in names}
