"""Columnar fast path for the trace-driven simulation engine.

:func:`repro.sim.engine.simulate` is the reference implementation: one
:class:`~repro.core.appliance.SieveStoreAppliance` method call per
request, one cache/policy/stats call per 512-byte block.  That chain of
small Python calls dominates simulation wall-clock.  This module
replays the same semantics as one flat loop over the columnar trace:

* the LRU metastate is driven directly through the cache's
  ``OrderedDict`` (membership test + ``move_to_end`` +
  ``popitem(last=False)``), with the cache's resident *set* resynced
  only at epoch boundaries and at the end of the run;
* per-day hit/miss/backing counters are bumped once per request
  (every block of a request shares the request's issue time, so the
  per-block recording of the reference path lands in the same bucket);
* allocation-writes are counted in one step when the whole request
  completes within one calendar day — the per-block interpolated
  completion times are only materialized for the rare requests that
  straddle a day boundary;
* the policy's ``wants``/``observe`` hooks are specialized by *method
  identity*: a policy whose ``wants`` is literally
  ``AllocateOnDemand.wants`` allocates every miss without a Python
  call, while any override (including subclasses that re-define the
  method) falls back to per-miss calls in exactly the reference order.

The fast path covers the configuration every figure uses — LRU
replacement and write-through accounting.  Anything else (write-back,
ablation replacement policies) is routed to the reference path by
:func:`repro.sim.engine.simulate`; the equivalence suite asserts the
two paths produce bit-identical :class:`~repro.cache.stats.CacheStats`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.cache.allocation import (
    AllocateOnDemand,
    AllocationPolicy,
    NeverAllocate,
    StaticSet,
    WriteMissNoAllocate,
)
from repro.cache.block_cache import BlockCache
from repro.cache.replacement import LRUReplacement
from repro.cache.stats import CacheStats
from repro.core.ideal import IdealDailySieve
from repro.core.random_sieve import RandSieveBlkD
import numpy as np

from repro.core.sieve_kernel import SieveStoreCKernel
from repro.core.sieve_kernel import subwindow_indices
from repro.core.sieve_kernel import supports as _sieve_supported
from repro.core.sievestore_d import SieveStoreD
from repro.core.windows import COUNTER_SATURATION
from repro.traces.columnar import ColumnarTrace
from repro.util.intervals import SECONDS_PER_DAY

# wants() specializations, resolved once per run by method identity.
_W_TRUE = 0  # allocate every miss (AOD)
_W_FALSE = 1  # never allocate continuously (discrete sieves, oracles)
_W_NOT_WRITE = 2  # allocate read misses only (WMNA)
_W_CALL = 3  # stateful/unknown: call policy.wants per miss
_W_SIEVE = 4  # plain SieveStore-C: inline array-backed sieve kernel

#: Requests per vectorized sieve-kernel precompute pass.
_SIEVE_CHUNK = 1 << 16

# observe() specializations.
_O_NONE = 0  # the base-class no-op
_O_COUNTER = 1  # SieveStoreD: Counter increment per access
_O_SET = 2  # RandSieveBlkD: set.add per access
_O_CALL = 3  # unknown override: call policy.observe per block

#: ``wants`` implementations known to return a constant.
_CONSTANT_FALSE_WANTS = (
    NeverAllocate.wants,
    StaticSet.wants,
    SieveStoreD.wants,
    IdealDailySieve.wants,
    RandSieveBlkD.wants,
)


def _wants_mode(policy: AllocationPolicy) -> int:
    wants = type(policy).wants
    if wants is AllocateOnDemand.wants:
        return _W_TRUE
    if wants is WriteMissNoAllocate.wants:
        return _W_NOT_WRITE
    if any(wants is known for known in _CONSTANT_FALSE_WANTS):
        return _W_FALSE
    if _sieve_supported(policy):
        # Exact type only: subclasses (e.g. AdaptiveSieveStoreC) may
        # change tier internals without redefining wants, so they take
        # the general per-miss-call path.
        return _W_SIEVE
    return _W_CALL


def _observe_mode(policy: AllocationPolicy) -> int:
    observe = type(policy).observe
    if observe is AllocationPolicy.observe:
        return _O_NONE
    if observe is SieveStoreD.observe:
        return _O_COUNTER
    if observe is RandSieveBlkD.observe:
        return _O_SET
    return _O_CALL


def _sync_sieve_counters(
    kernel,
    policy,
    imct,
    per_day,
    single_tier: bool,
    s_misses0: int,
    s_recorded0: int,
    s_imct_rej0: int,
    s_promos0: int,
    s_mct_rej0: int,
    s_adms0: int,
    s_collisions: int,
    s_promos: int,
    s_mct_rej: int,
    s_adms: int,
) -> None:
    """Flush kernel lists and counter locals into the policy object.

    Counter assignments come after ``sync()``: write_back restores a
    stale ``recorded_misses`` from the kernel's init-time snapshot; the
    locals are authoritative.  The derived counters (see the kernel
    setup comment in the loop): this segment's stats misses split
    exactly across the four sieve outcomes, of which only IMCT
    rejections went uncounted in the loop, so the two hot-path totals
    fall out of the deltas against the run-start baselines.  Idempotent
    at any cursor, so checkpoint, segment-boundary, and end-of-run
    sites all share it.
    """
    kernel.sync()
    misses = sum(d.accesses - d.read_hits - d.write_hits for d in per_day) - s_misses0
    adms_d = s_adms - s_adms0
    if single_tier:
        recorded = misses
        rejections = misses - adms_d
    else:
        recorded = misses - (s_mct_rej - s_mct_rej0) - adms_d
        rejections = recorded - (s_promos - s_promos0)
    imct.recorded_misses = s_recorded0 + recorded
    imct.alias_collisions = s_collisions
    policy.imct_rejections = s_imct_rej0 + rejections
    policy.promotions = s_promos
    policy.mct_rejections = s_mct_rej
    policy.admissions = s_adms


def simulate_fast(
    columns: ColumnarTrace,
    policy: AllocationPolicy,
    capacity_blocks: int,
    days: int,
    track_minutes: bool,
    batch_moves_staggered: bool,
    epoch_seconds: float,
    total_epochs: int,
    stats: "CacheStats" = None,
    cache: "BlockCache" = None,
    start_index: int = 0,
    start_epoch: int = -1,
    checkpoint_every: int = None,
    checkpointer=None,
    boundary_hook=None,
    progress_every: int = None,
    progress_hook=None,
) -> Tuple[CacheStats, BlockCache]:
    """Replay ``columns`` through ``policy``; LRU + write-through only.

    Returns ``(stats, cache)`` exactly as the reference path would have
    left them (same counters, same resident set, same LRU order).

    Checkpoint/resume: passing ``stats``/``cache``/``start_index``/
    ``start_epoch`` (all restored from one checkpoint) continues a run
    mid-trace; ``checkpointer(cursor, current_epoch)`` is invoked every
    ``checkpoint_every`` requests with the cache's resident set already
    resynced, so the callback can pickle ``policy``/``cache``/``stats``
    as-is.  The driver for both is :mod:`repro.sim.engine`.

    Observability: ``boundary_hook(epoch, cursor)`` fires after each
    epoch boundary is applied; ``progress_hook(requests_done,
    current_epoch)`` fires every ``progress_every`` requests.  Both are
    telemetry-only — they must not mutate simulation state — and when
    left ``None`` cost one predicate test per boundary/request.

    This is the whole-trace entry point; it feeds the in-RAM columns to
    :func:`simulate_fast_chunks` as a single chunk.  Out-of-core runs
    hand that function a bounded chunk iterator instead.
    """
    return simulate_fast_chunks(
        [(0, columns)],
        policy,
        capacity_blocks=capacity_blocks,
        days=days,
        track_minutes=track_minutes,
        batch_moves_staggered=batch_moves_staggered,
        epoch_seconds=epoch_seconds,
        total_epochs=total_epochs,
        stats=stats,
        cache=cache,
        start_cursor=start_index,
        start_epoch=start_epoch,
        checkpoint_every=checkpoint_every,
        checkpointer=checkpointer,
        boundary_hook=boundary_hook,
        progress_every=progress_every,
        progress_hook=progress_hook,
    )


def simulate_fast_chunks(
    chunks,
    policy: AllocationPolicy,
    capacity_blocks: int,
    days: int,
    track_minutes: bool,
    batch_moves_staggered: bool,
    epoch_seconds: float,
    total_epochs: int,
    stats: "CacheStats" = None,
    cache: "BlockCache" = None,
    start_cursor: int = 0,
    start_epoch: int = -1,
    checkpoint_every: int = None,
    checkpointer=None,
    boundary_hook=None,
    progress_every: int = None,
    progress_hook=None,
    segment_hook=None,
) -> Tuple[CacheStats, BlockCache]:
    """Replay a stream of columnar chunks through ``policy``.

    ``chunks`` yields ``(base_row, columns)`` pieces of one trace in
    issue order — contiguous, ascending, never overlapping (a
    :meth:`~repro.traces.segments.SegmentStore.iter_chunks` iterator,
    or one in-RAM trace as a single chunk).  Rows before
    ``start_cursor`` within the first chunk are skipped, so resuming
    mid-chunk and resuming with a pre-trimmed iterator both work.  Only
    one chunk's columns are materialized as Python lists at a time:
    peak memory follows the chunk budget, not the trace.

    All bucketing, ordering, and counter semantics are identical to the
    single-chunk path — chunk boundaries are invisible in the results,
    which the segmented-pipeline equivalence suite asserts byte for
    byte.  ``segment_hook(cursor, current_epoch)`` fires after each
    chunk with the cache's resident set resynced and (for the sieve
    kernel) the policy object fully synced — the per-segment checkpoint
    hook for out-of-core runs.
    """
    if stats is None:
        stats = CacheStats(days=days, track_minutes=track_minutes)
    if cache is None:
        cache = BlockCache(capacity_blocks, replacement=LRUReplacement())
    replacement = cache.replacement

    od = replacement._order
    od_move = od.move_to_end
    od_pop = od.popitem
    per_day = stats.per_day
    record_ssd_io = stats.record_ssd_io
    capacity = capacity_blocks
    last_day = days - 1
    day_seconds = float(SECONDS_PER_DAY)

    wmode = _wants_mode(policy)
    omode = _observe_mode(policy)
    wants = policy.wants
    observe = policy.observe
    # Specialized observe targets; these containers are *replaced* by
    # their policies at epoch boundaries, so they are rebound after
    # every boundary below.
    counts = policy._epoch_counts if omode == _O_COUNTER else None
    seen = policy._seen_this_epoch if omode == _O_SET else None
    # Discrete/constant-False policies never allocate inside an epoch,
    # and hits do not change the resident *set* — only its recency — so
    # their cache._resident stays valid between boundaries.  Allocating
    # modes mutate the OrderedDict only; resync before batches/at end.
    may_allocate = wmode != _W_FALSE

    # -- sieve-kernel state (only when wmode == _W_SIEVE) -----------------
    # The kernel owns the IMCT as flat lists for the run; every counter
    # the object path maintains is tracked in plain locals (deliberately
    # not a closure — cell variables would slow the per-miss increments)
    # and written back into the policy object before any checkpoint
    # pickle and at end of run, so the policy stays the engine-agnostic
    # source of truth.
    kernel = None
    if wmode == _W_SIEVE:
        kernel = SieveStoreCKernel(policy)
        s_counts = kernel.counts
        s_last = kernel.last
        s_totals = kernel.totals
        k_w = kernel.k
        n_slots = kernel.n_slots
        saturation = COUNTER_SATURATION
        imct = policy.imct
        s_lastaddr = imct._last_address  # None unless collision tracking
        tracking = s_lastaddr is not None
        mct = policy.mct
        mct_counters = mct._counters
        mct_record = mct.record_miss
        mct_track = mct.track
        mct_forget = mct.forget
        single_tier = policy.config.single_tier_admission
        t1 = policy.config.t1
        t2 = policy.config.t2
        s_collisions = imct.alias_collisions
        s_promos = policy.promotions
        s_mct_rej = policy.mct_rejections
        s_adms = policy.admissions
        # imct_rejections (the dominant outcome by design) and
        # recorded_misses are derived, not incremented per miss: every
        # miss block ends in exactly one of {IMCT rejection, promotion,
        # MCT rejection, admission}, the rare outcomes all keep
        # counters, and the per-day stats already count misses — so the
        # two hot-path totals fall out of the deltas at sync time and
        # the hot loop saves an increment per sieved miss.
        s_recorded0 = imct.recorded_misses
        s_imct_rej0 = policy.imct_rejections
        s_promos0 = s_promos
        s_mct_rej0 = s_mct_rej
        s_adms0 = s_adms
        s_misses0 = sum(
            d.accesses - d.read_hits - d.write_hits for d in per_day
        )
        # Precompute windows are chunk-local (sl_start/sl_end reset at
        # every chunk head); these bindings just establish the types.
        c_subs: List[int] = []
        cis_iter: Iterator[int] = iter(())

    def apply_boundary(epoch: int) -> None:
        batch = policy.epoch_boundary(epoch)
        if batch is None:
            return
        if may_allocate:
            cache._resident = set(od)
        new_set = set(batch)
        inserted, _removed = cache.replace_contents(new_set)
        if inserted:
            # Batch allocation-writes belong to the calendar day
            # containing the epoch boundary (boundary k fires at
            # k * epoch_seconds); identical expression to the reference
            # path's begin_day for bit-identity.
            boundary_time = float(epoch) * epoch_seconds
            day = int(boundary_time // day_seconds)
            if day > last_day:
                day = last_day
            per_day[day].allocation_writes += inserted
            if not batch_moves_staggered:
                record_ssd_io(boundary_time, (inserted + 7) >> 3, True)

    current_epoch = start_epoch
    cursor = start_cursor
    general = wmode == _W_CALL or omode == _O_CALL
    for base, chunk_cols in chunks:
        issue_l = chunk_cols.issue_time.tolist()
        rct_l = chunk_cols.completion_time.tolist()
        addr_l = chunk_cols.address.tolist()
        count_l = chunk_cols.block_count.tolist()
        write_l = chunk_cols.is_write.tolist()
        chunk_n = len(issue_l)
        # Per-request epoch and calendar-day indices, floor-divided in
        # one vectorized pass with Python `//` boundary semantics
        # (subwindow_indices is that generic primitive — the
        # ColumnarTrace.issue_days contract) instead of two float
        # divisions per request in the loop.  Day indices are
        # pre-capped.  Both are elementwise, so chunk boundaries cannot
        # change a value.
        epoch_l = subwindow_indices(chunk_cols.issue_time, epoch_seconds).tolist()
        d_issue_l = np.minimum(
            subwindow_indices(chunk_cols.issue_time, day_seconds), last_day
        ).tolist()
        # Rows the cursor already covers are skipped (a resume can land
        # mid-chunk when the chunk iterator is coarser than the cursor).
        local_start = cursor - base
        if local_start < 0:
            local_start = 0
        # Sieve precompute windows never span chunks: reset so the
        # first sieved request of this chunk repopulates them.
        sl_start = sl_end = local_start
        for jl in range(local_start, chunk_n):
            j = base + jl
            issue = issue_l[jl]
            epoch = epoch_l[jl]
            if epoch > current_epoch:
                while current_epoch < epoch:
                    current_epoch += 1
                    apply_boundary(current_epoch)
                    if boundary_hook is not None:
                        boundary_hook(current_epoch, j)
                if omode == _O_COUNTER:
                    counts = policy._epoch_counts
                elif omode == _O_SET:
                    seen = policy._seen_this_epoch

            addr = addr_l[jl]
            k = count_l[jl]
            w = write_l[jl]
            end = addr + k
            hit = 0
            allocated = 0
            alloc_offsets: Optional[List[int]] = None

            d_issue = d_issue_l[jl]

            if general:
                # Reference-order general body: observe every block, ask
                # wants() on every miss (stateful sieves consume the miss
                # stream in exactly this order).
                rct = rct_l[jl]
                d_rct = int(rct // day_seconds)
                if d_rct > last_day:
                    d_rct = last_day
                same_day = d_rct == d_issue
                do_observe = omode != _O_NONE
                alloc_offsets = []
                for off in range(k):
                    a = addr + off
                    if a in od:
                        od_move(a)
                        if do_observe:
                            observe(a, w, issue, True)
                        hit += 1
                    else:
                        if do_observe:
                            observe(a, w, issue, False)
                        if (
                            wmode == _W_TRUE
                            or (wmode == _W_NOT_WRITE and not w)
                            or (wmode == _W_CALL and wants(a, w, issue))
                        ):
                            if len(od) >= capacity:
                                od_pop(False)
                            od[a] = None
                            if same_day:
                                allocated += 1
                            else:
                                alloc_offsets.append(off)
            elif wmode == _W_SIEVE:
                # Inline SieveStore-C: the two-tier sieve of
                # SieveStoreC.wants unrolled over the kernel's flat lists.
                # Decision order matches the reference exactly — hits move
                # recency first, every miss is counted in exactly one tier,
                # and the (rare) MCT tier calls the live object so prune
                # timing and insert counting stay bit-identical.
                if jl >= sl_end:
                    sl_start = jl
                    sl_end = jl + _SIEVE_CHUNK
                    if sl_end > chunk_n:
                        sl_end = chunk_n
                    c_subs, c_cis = kernel.precompute_chunk(
                        chunk_cols.address[sl_start:sl_end],
                        chunk_cols.block_count[sl_start:sl_end],
                        chunk_cols.issue_time[sl_start:sl_end],
                    )
                    # Blocks are consumed strictly in chunk order (every
                    # request walks all k of its blocks), so one iterator
                    # replaces per-block index arithmetic into c_cis.
                    cis_iter = iter(c_cis)
                # Completion-day bucketing is only consulted when a block is
                # admitted (rare: that is the whole point of the sieve), so
                # rct/same_day are computed lazily at the first admission of
                # the request (d_rct == -1 marks "not yet computed";
                # same_day is assigned there before its first read).
                d_rct = -1
                sub = c_subs[jl - sl_start]
                # The request's column base in the column-major counts list;
                # a block's slot is its precomputed cell index minus this.
                colbase = sub % k_w * n_slots
                if not tracking:
                    # Dominant configuration: no collision diagnostics.
                    # (The tracking copy below must mirror any change here.)
                    for a, ci in zip(range(addr, end), cis_iter):
                        if a in od:
                            od_move(a)
                            hit += 1
                            continue
                        if a in mct_counters:
                            # Tier 2: exact counting (IMCT-promoted only).
                            exact = mct_record(a, issue)
                            if exact < t2:
                                s_mct_rej += 1
                                continue
                            mct_forget(a)
                            s_adms += 1
                        else:
                            # Tier 1: the IMCT recording, inlined.  Running
                            # totals hold each slot's row sum, which equals
                            # its windowed total after lazy advancement
                            # (expired positions are zeroed on record,
                            # untouched positions are zero).
                            slot = ci - colbase
                            if sub != s_last[slot]:
                                ls = s_last[slot]
                                if ls < 0 or sub - ls >= k_w:
                                    c = slot
                                    for _ in range(k_w):
                                        s_counts[c] = 0
                                        c += n_slots
                                    s_totals[slot] = 0
                                else:
                                    t = s_totals[slot]
                                    for g in range(ls + 1, sub + 1):
                                        c = g % k_w * n_slots + slot
                                        t -= s_counts[c]
                                        s_counts[c] = 0
                                    s_totals[slot] = t
                                s_last[slot] = sub
                            cv = s_counts[ci]
                            if cv < saturation:
                                s_counts[ci] = cv + 1
                                tot = s_totals[slot] + 1
                                s_totals[slot] = tot
                            else:
                                tot = s_totals[slot]
                            if tot < t1:
                                continue
                            if not single_tier:
                                mct_track(a)
                                s_promos += 1
                                continue
                            # Ablation: admit on tier 1 alone; the slot is
                            # reset exactly like imct.reset_slot.
                            c = slot
                            for _ in range(k_w):
                                s_counts[c] = 0
                                c += n_slots
                            s_totals[slot] = 0
                            s_last[slot] = -1
                            s_adms += 1
                        # Admission (either tier): install the block.
                        if d_rct < 0:
                            rct = rct_l[jl]
                            d_rct = int(rct // day_seconds)
                            if d_rct > last_day:
                                d_rct = last_day
                            same_day = d_rct == d_issue
                        if len(od) >= capacity:
                            od_pop(False)
                        od[a] = None
                        if same_day:
                            allocated += 1
                        elif alloc_offsets is None:
                            alloc_offsets = [a - addr]
                        else:
                            alloc_offsets.append(a - addr)
                else:
                    # Collision-tracking copy: identical to the loop above
                    # plus the per-recording last-address bookkeeping of
                    # ImpreciseMissCountTable.enable_collision_tracking.
                    for a, ci in zip(range(addr, end), cis_iter):
                        if a in od:
                            od_move(a)
                            hit += 1
                            continue
                        if a in mct_counters:
                            exact = mct_record(a, issue)
                            if exact < t2:
                                s_mct_rej += 1
                                continue
                            mct_forget(a)
                            s_adms += 1
                        else:
                            slot = ci - colbase
                            prev = s_lastaddr[slot]
                            if prev is not None and prev != a:
                                s_collisions += 1
                            s_lastaddr[slot] = a
                            if sub != s_last[slot]:
                                ls = s_last[slot]
                                if ls < 0 or sub - ls >= k_w:
                                    c = slot
                                    for _ in range(k_w):
                                        s_counts[c] = 0
                                        c += n_slots
                                    s_totals[slot] = 0
                                else:
                                    t = s_totals[slot]
                                    for g in range(ls + 1, sub + 1):
                                        c = g % k_w * n_slots + slot
                                        t -= s_counts[c]
                                        s_counts[c] = 0
                                    s_totals[slot] = t
                                s_last[slot] = sub
                            cv = s_counts[ci]
                            if cv < saturation:
                                s_counts[ci] = cv + 1
                                tot = s_totals[slot] + 1
                                s_totals[slot] = tot
                            else:
                                tot = s_totals[slot]
                            if tot < t1:
                                continue
                            if not single_tier:
                                mct_track(a)
                                s_promos += 1
                                continue
                            c = slot
                            for _ in range(k_w):
                                s_counts[c] = 0
                                c += n_slots
                            s_totals[slot] = 0
                            s_last[slot] = -1
                            s_adms += 1
                        if d_rct < 0:
                            rct = rct_l[jl]
                            d_rct = int(rct // day_seconds)
                            if d_rct > last_day:
                                d_rct = last_day
                            same_day = d_rct == d_issue
                        if len(od) >= capacity:
                            od_pop(False)
                        od[a] = None
                        if same_day:
                            allocated += 1
                        elif alloc_offsets is None:
                            alloc_offsets = [a - addr]
                        else:
                            alloc_offsets.append(a - addr)
            elif wmode == _W_FALSE:
                if omode == _O_COUNTER:
                    for a in range(addr, end):
                        counts[a] += 1
                        if a in od:
                            od_move(a)
                            hit += 1
                elif omode == _O_SET:
                    for a in range(addr, end):
                        seen.add(a)
                        if a in od:
                            od_move(a)
                            hit += 1
                else:
                    for a in range(addr, end):
                        if a in od:
                            od_move(a)
                            hit += 1
            else:
                # Allocating specializations (wants is a known constant and
                # observe is the no-op).
                rct = rct_l[jl]
                d_rct = int(rct // day_seconds)
                if d_rct > last_day:
                    d_rct = last_day
                if wmode == _W_NOT_WRITE and w:
                    for a in range(addr, end):
                        if a in od:
                            od_move(a)
                            hit += 1
                elif d_rct == d_issue:
                    for a in range(addr, end):
                        if a in od:
                            od_move(a)
                            hit += 1
                        else:
                            if len(od) >= capacity:
                                od_pop(False)
                            od[a] = None
                    allocated = k - hit
                else:
                    alloc_offsets = []
                    for off in range(k):
                        a = addr + off
                        if a in od:
                            od_move(a)
                            hit += 1
                        else:
                            if len(od) >= capacity:
                                od_pop(False)
                            od[a] = None
                            alloc_offsets.append(off)

            # -- per-request statistics (identical bucketing to the
            # reference path: all blocks of a request share its issue time).
            ds = per_day[d_issue]
            ds.accesses += k
            if w:
                ds.write_hits += hit
                ds.write_misses += k - hit
                ds.backing_writes += k  # write-through: every write block
            else:
                ds.read_hits += hit
                ds.read_misses += k - hit

            if allocated:
                ds.allocation_writes += allocated
            elif alloc_offsets:
                # Day-straddling request: interpolate each allocated
                # block's completion, as the reference per-block loop does.
                span = rct - issue
                for off in alloc_offsets:
                    completion = issue + span * ((off + 1) / k)
                    day = int(completion // day_seconds)
                    if day > last_day:
                        day = last_day
                    per_day[day].allocation_writes += 1
                allocated = len(alloc_offsets)

            if track_minutes:
                if allocated:
                    record_ssd_io(rct_l[jl], (allocated + 7) >> 3, True)
                if hit:
                    record_ssd_io(issue, (hit + 7) >> 3, w)

            if checkpoint_every is not None and (j + 1) % checkpoint_every == 0:
                if may_allocate:
                    cache._resident = set(od)
                if kernel is not None:
                    _sync_sieve_counters(
                        kernel, policy, imct, per_day, single_tier,
                        s_misses0, s_recorded0, s_imct_rej0, s_promos0,
                        s_mct_rej0, s_adms0,
                        s_collisions, s_promos, s_mct_rej, s_adms,
                    )
                checkpointer(j + 1, current_epoch)
            if progress_every is not None and (j + 1) % progress_every == 0:
                progress_hook(j + 1, current_epoch)


        # End of chunk: advance the cursor (max() so a chunk wholly
        # behind a resume cursor can never move it backwards) and give
        # the caller a consistent state to checkpoint against.
        chunk_end_row = base + chunk_n
        if chunk_end_row > cursor:
            cursor = chunk_end_row
        if segment_hook is not None:
            if may_allocate:
                cache._resident = set(od)
            if kernel is not None:
                _sync_sieve_counters(
                    kernel, policy, imct, per_day, single_tier,
                    s_misses0, s_recorded0, s_imct_rej0, s_promos0,
                    s_mct_rej0, s_adms0,
                    s_collisions, s_promos, s_mct_rej, s_adms,
                )
            segment_hook(cursor, current_epoch)

    # Trailing epoch boundaries (discrete policies close their books).
    while current_epoch < total_epochs - 1:
        current_epoch += 1
        apply_boundary(current_epoch)
        if boundary_hook is not None:
            boundary_hook(current_epoch, cursor)
    if may_allocate:
        cache._resident = set(od)
    if kernel is not None:
        # The policy object must reflect the run before the caller
        # samples sieve telemetry or pickles a final state.
        _sync_sieve_counters(
            kernel, policy, imct, per_day, single_tier,
            s_misses0, s_recorded0, s_imct_rej0, s_promos0,
            s_mct_rej0, s_adms0,
            s_collisions, s_promos, s_mct_rej, s_adms,
        )
    return stats, cache
