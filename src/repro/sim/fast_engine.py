"""Columnar fast path for the trace-driven simulation engine.

:func:`repro.sim.engine.simulate` is the reference implementation: one
:class:`~repro.core.appliance.SieveStoreAppliance` method call per
request, one cache/policy/stats call per 512-byte block.  That chain of
small Python calls dominates simulation wall-clock.  This module
replays the same semantics as one flat loop over the columnar trace:

* the LRU metastate is driven directly through the cache's
  ``OrderedDict`` (membership test + ``move_to_end`` +
  ``popitem(last=False)``), with the cache's resident *set* resynced
  only at epoch boundaries and at the end of the run;
* per-day hit/miss/backing counters are bumped once per request
  (every block of a request shares the request's issue time, so the
  per-block recording of the reference path lands in the same bucket);
* allocation-writes are counted in one step when the whole request
  completes within one calendar day — the per-block interpolated
  completion times are only materialized for the rare requests that
  straddle a day boundary;
* the policy's ``wants``/``observe`` hooks are specialized by *method
  identity*: a policy whose ``wants`` is literally
  ``AllocateOnDemand.wants`` allocates every miss without a Python
  call, while any override (including subclasses that re-define the
  method) falls back to per-miss calls in exactly the reference order.

The fast path covers the configuration every figure uses — LRU
replacement and write-through accounting.  Anything else (write-back,
ablation replacement policies) is routed to the reference path by
:func:`repro.sim.engine.simulate`; the equivalence suite asserts the
two paths produce bit-identical :class:`~repro.cache.stats.CacheStats`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cache.allocation import (
    AllocateOnDemand,
    AllocationPolicy,
    NeverAllocate,
    StaticSet,
    WriteMissNoAllocate,
)
from repro.cache.block_cache import BlockCache
from repro.cache.replacement import LRUReplacement
from repro.cache.stats import CacheStats
from repro.core.ideal import IdealDailySieve
from repro.core.random_sieve import RandSieveBlkD
from repro.core.sievestore_d import SieveStoreD
from repro.traces.columnar import ColumnarTrace
from repro.util.intervals import SECONDS_PER_DAY

# wants() specializations, resolved once per run by method identity.
_W_TRUE = 0  # allocate every miss (AOD)
_W_FALSE = 1  # never allocate continuously (discrete sieves, oracles)
_W_NOT_WRITE = 2  # allocate read misses only (WMNA)
_W_CALL = 3  # stateful/unknown: call policy.wants per miss

# observe() specializations.
_O_NONE = 0  # the base-class no-op
_O_COUNTER = 1  # SieveStoreD: Counter increment per access
_O_SET = 2  # RandSieveBlkD: set.add per access
_O_CALL = 3  # unknown override: call policy.observe per block

#: ``wants`` implementations known to return a constant.
_CONSTANT_FALSE_WANTS = (
    NeverAllocate.wants,
    StaticSet.wants,
    SieveStoreD.wants,
    IdealDailySieve.wants,
    RandSieveBlkD.wants,
)


def _wants_mode(policy: AllocationPolicy) -> int:
    wants = type(policy).wants
    if wants is AllocateOnDemand.wants:
        return _W_TRUE
    if wants is WriteMissNoAllocate.wants:
        return _W_NOT_WRITE
    if any(wants is known for known in _CONSTANT_FALSE_WANTS):
        return _W_FALSE
    return _W_CALL


def _observe_mode(policy: AllocationPolicy) -> int:
    observe = type(policy).observe
    if observe is AllocationPolicy.observe:
        return _O_NONE
    if observe is SieveStoreD.observe:
        return _O_COUNTER
    if observe is RandSieveBlkD.observe:
        return _O_SET
    return _O_CALL


def simulate_fast(
    columns: ColumnarTrace,
    policy: AllocationPolicy,
    capacity_blocks: int,
    days: int,
    track_minutes: bool,
    batch_moves_staggered: bool,
    epoch_seconds: float,
    total_epochs: int,
    stats: "CacheStats" = None,
    cache: "BlockCache" = None,
    start_index: int = 0,
    start_epoch: int = -1,
    checkpoint_every: int = None,
    checkpointer=None,
    boundary_hook=None,
    progress_every: int = None,
    progress_hook=None,
) -> Tuple[CacheStats, BlockCache]:
    """Replay ``columns`` through ``policy``; LRU + write-through only.

    Returns ``(stats, cache)`` exactly as the reference path would have
    left them (same counters, same resident set, same LRU order).

    Checkpoint/resume: passing ``stats``/``cache``/``start_index``/
    ``start_epoch`` (all restored from one checkpoint) continues a run
    mid-trace; ``checkpointer(cursor, current_epoch)`` is invoked every
    ``checkpoint_every`` requests with the cache's resident set already
    resynced, so the callback can pickle ``policy``/``cache``/``stats``
    as-is.  The driver for both is :mod:`repro.sim.engine`.

    Observability: ``boundary_hook(epoch, cursor)`` fires after each
    epoch boundary is applied; ``progress_hook(requests_done,
    current_epoch)`` fires every ``progress_every`` requests.  Both are
    telemetry-only — they must not mutate simulation state — and when
    left ``None`` cost one predicate test per boundary/request.
    """
    if stats is None:
        stats = CacheStats(days=days, track_minutes=track_minutes)
    if cache is None:
        cache = BlockCache(capacity_blocks, replacement=LRUReplacement())
    replacement = cache.replacement

    od = replacement._order
    od_move = od.move_to_end
    od_pop = od.popitem
    per_day = stats.per_day
    record_ssd_io = stats.record_ssd_io
    capacity = capacity_blocks
    last_day = days - 1
    day_seconds = float(SECONDS_PER_DAY)

    wmode = _wants_mode(policy)
    omode = _observe_mode(policy)
    wants = policy.wants
    observe = policy.observe
    # Specialized observe targets; these containers are *replaced* by
    # their policies at epoch boundaries, so they are rebound after
    # every boundary below.
    counts = policy._epoch_counts if omode == _O_COUNTER else None
    seen = policy._seen_this_epoch if omode == _O_SET else None
    # Discrete/constant-False policies never allocate inside an epoch,
    # and hits do not change the resident *set* — only its recency — so
    # their cache._resident stays valid between boundaries.  Allocating
    # modes mutate the OrderedDict only; resync before batches/at end.
    may_allocate = wmode != _W_FALSE

    def apply_boundary(epoch: int) -> None:
        batch = policy.epoch_boundary(epoch)
        if batch is None:
            return
        if may_allocate:
            cache._resident = set(od)
        new_set = set(batch)
        inserted, _removed = cache.replace_contents(new_set)
        if inserted:
            # Batch allocation-writes belong to the calendar day
            # containing the epoch boundary (boundary k fires at
            # k * epoch_seconds); identical expression to the reference
            # path's begin_day for bit-identity.
            boundary_time = float(epoch) * epoch_seconds
            day = int(boundary_time // day_seconds)
            if day > last_day:
                day = last_day
            per_day[day].allocation_writes += inserted
            if not batch_moves_staggered:
                record_ssd_io(boundary_time, (inserted + 7) >> 3, True)

    issue_l = columns.issue_time.tolist()
    rct_l = columns.completion_time.tolist()
    addr_l = columns.address.tolist()
    count_l = columns.block_count.tolist()
    write_l = columns.is_write.tolist()
    n_requests = len(issue_l)

    current_epoch = start_epoch
    general = wmode == _W_CALL or omode == _O_CALL
    for j in range(start_index, n_requests):
        issue = issue_l[j]
        epoch = int(issue // epoch_seconds)
        if epoch > current_epoch:
            while current_epoch < epoch:
                current_epoch += 1
                apply_boundary(current_epoch)
                if boundary_hook is not None:
                    boundary_hook(current_epoch, j)
            if omode == _O_COUNTER:
                counts = policy._epoch_counts
            elif omode == _O_SET:
                seen = policy._seen_this_epoch

        addr = addr_l[j]
        k = count_l[j]
        w = write_l[j]
        end = addr + k
        hit = 0
        allocated = 0
        alloc_offsets: List[int] = ()  # type: ignore[assignment]

        d_issue = int(issue // day_seconds)
        if d_issue > last_day:
            d_issue = last_day

        if general:
            # Reference-order general body: observe every block, ask
            # wants() on every miss (stateful sieves consume the miss
            # stream in exactly this order).
            rct = rct_l[j]
            d_rct = int(rct // day_seconds)
            if d_rct > last_day:
                d_rct = last_day
            same_day = d_rct == d_issue
            do_observe = omode != _O_NONE
            alloc_offsets = []
            for off in range(k):
                a = addr + off
                if a in od:
                    od_move(a)
                    if do_observe:
                        observe(a, w, issue, True)
                    hit += 1
                else:
                    if do_observe:
                        observe(a, w, issue, False)
                    if (
                        wmode == _W_TRUE
                        or (wmode == _W_NOT_WRITE and not w)
                        or (wmode == _W_CALL and wants(a, w, issue))
                    ):
                        if len(od) >= capacity:
                            od_pop(False)
                        od[a] = None
                        if same_day:
                            allocated += 1
                        else:
                            alloc_offsets.append(off)
        elif wmode == _W_FALSE:
            if omode == _O_COUNTER:
                for a in range(addr, end):
                    counts[a] += 1
                    if a in od:
                        od_move(a)
                        hit += 1
            elif omode == _O_SET:
                for a in range(addr, end):
                    seen.add(a)
                    if a in od:
                        od_move(a)
                        hit += 1
            else:
                for a in range(addr, end):
                    if a in od:
                        od_move(a)
                        hit += 1
        else:
            # Allocating specializations (wants is a known constant and
            # observe is the no-op).
            rct = rct_l[j]
            d_rct = int(rct // day_seconds)
            if d_rct > last_day:
                d_rct = last_day
            if wmode == _W_NOT_WRITE and w:
                for a in range(addr, end):
                    if a in od:
                        od_move(a)
                        hit += 1
            elif d_rct == d_issue:
                for a in range(addr, end):
                    if a in od:
                        od_move(a)
                        hit += 1
                    else:
                        if len(od) >= capacity:
                            od_pop(False)
                        od[a] = None
                allocated = k - hit
            else:
                alloc_offsets = []
                for off in range(k):
                    a = addr + off
                    if a in od:
                        od_move(a)
                        hit += 1
                    else:
                        if len(od) >= capacity:
                            od_pop(False)
                        od[a] = None
                        alloc_offsets.append(off)

        # -- per-request statistics (identical bucketing to the
        # reference path: all blocks of a request share its issue time).
        ds = per_day[d_issue]
        ds.accesses += k
        if w:
            ds.write_hits += hit
            ds.write_misses += k - hit
            ds.backing_writes += k  # write-through: every write block
        else:
            ds.read_hits += hit
            ds.read_misses += k - hit

        if allocated:
            ds.allocation_writes += allocated
        elif alloc_offsets:
            # Day-straddling request: interpolate each allocated
            # block's completion, as the reference per-block loop does.
            span = rct - issue
            for off in alloc_offsets:
                completion = issue + span * ((off + 1) / k)
                day = int(completion // day_seconds)
                if day > last_day:
                    day = last_day
                per_day[day].allocation_writes += 1
            allocated = len(alloc_offsets)

        if track_minutes:
            if allocated:
                record_ssd_io(rct_l[j], (allocated + 7) >> 3, True)
            if hit:
                record_ssd_io(issue, (hit + 7) >> 3, w)

        if checkpoint_every is not None and (j + 1) % checkpoint_every == 0:
            if may_allocate:
                cache._resident = set(od)
            checkpointer(j + 1, current_epoch)
        if progress_every is not None and (j + 1) % progress_every == 0:
            progress_hook(j + 1, current_epoch)

    # Trailing epoch boundaries (discrete policies close their books).
    while current_epoch < total_epochs - 1:
        current_epoch += 1
        apply_boundary(current_epoch)
        if boundary_hook is not None:
            boundary_hook(current_epoch, n_requests)
    if may_allocate:
        cache._resident = set(od)
    return stats, cache
