"""Result + checkpoint serialization.

Two concerns live here:

* **Results** — experiment outcomes as flat, versioned JSON.
  Simulation runs at real scales take minutes; downstream analysis
  (and the CLI's ``--json`` flag) wants the numbers without re-running.
  Everything the figure builders consume (per-day counters, per-minute
  I/O) round-trips.

* **Checkpoints** — crash-consistent snapshots of full simulation state
  (cache + policy metastate + stats + trace cursor), written atomically
  with a checksum so a SIGKILL mid-write can never leave a readable but
  corrupt file.  Resuming from a checkpoint produces final statistics
  bit-identical to the uninterrupted run (see
  :func:`repro.sim.engine.resume_simulation`).

Checkpoint file format (version 2)::

    bytes 0..7   magic  b"SSCKPT\\x00\\n"
    bytes 8..11  schema version (big-endian uint32)
    bytes 12..43 SHA-256 digest of the payload
    bytes 44..   pickle payload (a dict; see engine._checkpoint_payload)

Compatibility policy: the loader refuses any unknown version — a
checkpoint is a short-lived crash-recovery artifact, not an archive
format, so there is no cross-version migration.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
from pathlib import Path
from typing import Union

from repro.cache.stats import CacheStats, DayStats, MinuteIO
from repro.sim.engine import SimulationResult
from repro.util.atomic import atomic_write

#: Bump on schema changes; loaders refuse unknown versions.
SCHEMA_VERSION = 1

#: Checkpoint file magic + schema version (see module docs).
CHECKPOINT_MAGIC = b"SSCKPT\x00\n"
#: Version 2: SieveStoreC/ImpreciseMissCountTable pickles gained hoisted
#: attributes (the sieve-kernel fast path), so version-1 policy payloads
#: would rehydrate without them.  No migration — checkpoints are
#: short-lived crash-recovery artifacts.
CHECKPOINT_SCHEMA_VERSION = 2


class CheckpointError(Exception):
    """A checkpoint file is unreadable, corrupt, or incompatible."""


def stats_to_dict(stats: CacheStats) -> dict:
    """CacheStats -> plain-JSON dict.

    Fault-model fields (error/bypass counters, degraded/bypass seconds)
    are emitted only when nonzero, so fault-free output stays
    byte-identical to files written before the fault model existed.
    """
    payload = {
        "days": stats.days,
        "per_day": [
            {
                "accesses": d.accesses,
                "read_hits": d.read_hits,
                "write_hits": d.write_hits,
                "read_misses": d.read_misses,
                "write_misses": d.write_misses,
                "allocation_writes": d.allocation_writes,
                "backing_writes": d.backing_writes,
                "writebacks": d.writebacks,
            }
            for d in stats.per_day
        ],
        "per_minute": {
            str(minute): [io.reads, io.writes]
            for minute, io in sorted(stats.per_minute.items())
        },
    }
    for entry, day in zip(payload["per_day"], stats.per_day):
        if day.read_errors:
            entry["read_errors"] = day.read_errors
        if day.write_errors:
            entry["write_errors"] = day.write_errors
        if day.bypass_accesses:
            entry["bypass_accesses"] = day.bypass_accesses
    if stats.degraded_seconds:
        payload["degraded_seconds"] = stats.degraded_seconds
    if stats.bypass_seconds:
        payload["bypass_seconds"] = stats.bypass_seconds
    return payload


def stats_from_dict(payload: dict) -> CacheStats:
    """Inverse of :func:`stats_to_dict`."""
    stats = CacheStats(days=payload["days"])
    for index, day in enumerate(payload["per_day"]):
        stats.per_day[index] = DayStats(**day)
    for minute, (reads, writes) in payload.get("per_minute", {}).items():
        stats.per_minute[int(minute)] = MinuteIO(reads=reads, writes=writes)
    stats.degraded_seconds = payload.get("degraded_seconds", 0.0)
    stats.bypass_seconds = payload.get("bypass_seconds", 0.0)
    stats.check_consistency()
    return stats


def result_to_dict(result: SimulationResult) -> dict:
    """SimulationResult -> plain-JSON dict (policy objects are not
    serialized — only their name and the measured statistics)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "policy_name": result.policy_name,
        "wall_seconds": result.wall_seconds,
        "engine": result.engine,
        "stats": stats_to_dict(result.stats),
    }


def result_from_dict(payload: dict) -> SimulationResult:
    """Rehydrate a result (cache/policy objects come back as None)."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return SimulationResult(
        policy_name=payload["policy_name"],
        stats=stats_from_dict(payload["stats"]),
        cache=None,
        policy=None,
        wall_seconds=payload.get("wall_seconds", 0.0),
        # Unrecorded in files written before the field existed.
        engine=payload.get("engine", "object"),
    )


def save_result(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write one result to a JSON file (atomically published)."""
    encoded = json.dumps(result_to_dict(result), indent=2).encode("utf-8")
    with atomic_write(path) as handle:
        handle.write(encoded)


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))


# -- crash-consistent checkpoints -------------------------------------------

def save_checkpoint(payload: dict, path: Union[str, Path]) -> None:
    """Atomically write a checkpoint (magic + version + checksum + pickle).

    The bytes land in a temporary sibling first and are fsynced before
    an ``os.replace`` into place (and the parent directory is fsynced
    after it, via :func:`repro.util.atomic.atomic_write`), so the file
    at ``path`` is always a complete, self-verifying checkpoint — a
    crash (or SIGKILL) during the write leaves the previous checkpoint
    untouched.
    """
    path = Path(path)
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = (
        CHECKPOINT_MAGIC
        + struct.pack(">I", CHECKPOINT_SCHEMA_VERSION)
        + hashlib.sha256(body).digest()
    )
    with atomic_write(path) as handle:
        handle.write(header)
        handle.write(body)


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Read and verify a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` on a missing/truncated file, bad
    magic, unknown schema version, or checksum mismatch.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    header_len = len(CHECKPOINT_MAGIC) + 4 + hashlib.sha256().digest_size
    if len(raw) < header_len or not raw.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(f"{path} is not a SieveStore checkpoint")
    offset = len(CHECKPOINT_MAGIC)
    (version,) = struct.unpack_from(">I", raw, offset)
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint schema version {version} "
            f"(expected {CHECKPOINT_SCHEMA_VERSION})"
        )
    offset += 4
    digest = raw[offset : offset + hashlib.sha256().digest_size]
    body = raw[offset + hashlib.sha256().digest_size :]
    if hashlib.sha256(body).digest() != digest:
        raise CheckpointError(f"checksum mismatch in {path} (truncated or corrupt)")
    try:
        payload = pickle.loads(body)
    except Exception as error:  # pickle raises a zoo of exception types
        raise CheckpointError(f"cannot unpickle checkpoint {path}: {error}") from error
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: checkpoint payload is not a dict")
    return payload
