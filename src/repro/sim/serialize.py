"""Result serialization: persist experiment outcomes as JSON.

Simulation runs at real scales take minutes; downstream analysis (and
the CLI's ``--json`` flag) wants the numbers without re-running.  The
schema is deliberately flat and versioned; everything the figure
builders consume (per-day counters, per-minute I/O) round-trips.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.cache.stats import CacheStats, DayStats, MinuteIO
from repro.sim.engine import SimulationResult

#: Bump on schema changes; loaders refuse unknown versions.
SCHEMA_VERSION = 1


def stats_to_dict(stats: CacheStats) -> dict:
    """CacheStats -> plain-JSON dict."""
    return {
        "days": stats.days,
        "per_day": [
            {
                "accesses": d.accesses,
                "read_hits": d.read_hits,
                "write_hits": d.write_hits,
                "read_misses": d.read_misses,
                "write_misses": d.write_misses,
                "allocation_writes": d.allocation_writes,
                "backing_writes": d.backing_writes,
                "writebacks": d.writebacks,
            }
            for d in stats.per_day
        ],
        "per_minute": {
            str(minute): [io.reads, io.writes]
            for minute, io in sorted(stats.per_minute.items())
        },
    }


def stats_from_dict(payload: dict) -> CacheStats:
    """Inverse of :func:`stats_to_dict`."""
    stats = CacheStats(days=payload["days"])
    for index, day in enumerate(payload["per_day"]):
        stats.per_day[index] = DayStats(**day)
    for minute, (reads, writes) in payload.get("per_minute", {}).items():
        stats.per_minute[int(minute)] = MinuteIO(reads=reads, writes=writes)
    stats.check_consistency()
    return stats


def result_to_dict(result: SimulationResult) -> dict:
    """SimulationResult -> plain-JSON dict (policy objects are not
    serialized — only their name and the measured statistics)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "policy_name": result.policy_name,
        "wall_seconds": result.wall_seconds,
        "engine": result.engine,
        "stats": stats_to_dict(result.stats),
    }


def result_from_dict(payload: dict) -> SimulationResult:
    """Rehydrate a result (cache/policy objects come back as None)."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return SimulationResult(
        policy_name=payload["policy_name"],
        stats=stats_from_dict(payload["stats"]),
        cache=None,
        policy=None,
        wall_seconds=payload.get("wall_seconds", 0.0),
        # Unrecorded in files written before the field existed.
        engine=payload.get("engine", "object"),
    )


def save_result(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write one result to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_result(path: Union[str, Path]) -> SimulationResult:
    """Read a result written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))
