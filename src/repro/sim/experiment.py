"""Experiment configuration and the policy registry.

Maps the paper's evaluated configurations (Figure 5's bars) onto
constructed policy + capacity pairs, with all sizes derived from one
linear ``scale`` so the scaled experiments keep the paper's ratios:

* sieved caches (Ideal, SieveStore-D/-C, RandSieve-*): 16 GB x scale;
* unsieved caches (AOD, WMNA): both 16 GB and 32 GB x scale — the paper
  grants the unsieved policies a double-size cache to account for the
  DRAM/storage the sieve metastate would occupy, and reports the 32 GB
  numbers;
* IMCT sized to the paper's ~8 GB-of-state budget x scale.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.core.admission import build_admission_gate
from repro.core.ideal import IdealDailySieve
from repro.core.random_sieve import RandSieveBlkD, RandSieveC
from repro.core.sievestore_c import SieveStoreC, SieveStoreCConfig
from repro.core.sievestore_d import SieveStoreD, SieveStoreDConfig
from repro.core.windows import WindowSpec
from repro.sim.engine import SimulationResult, simulate
from repro.traces.columnar import ColumnarTrace
from repro.traces.model import Trace
from repro.traces.streams import daily_block_counts
from repro.util.units import BLOCK_BYTES, GIB

if TYPE_CHECKING:
    from repro.sim.parallel import SuiteRun

#: Figure 5's configuration keys, in the paper's bar order.
FIGURE5_POLICIES = (
    "ideal",
    "randsieve-blkd",
    "sievestore-d",
    "randsieve-c",
    "sievestore-c",
    "aod-16",
    "wmna-16",
    "aod-32",
    "wmna-32",
)

#: Paper's full-scale cache sizes.
SIEVED_CACHE_GIB = 16.0
UNSIEVED_LARGE_CACHE_GIB = 32.0
#: Paper's full-scale sieve-state budget (~8 GB of IMCT+MCT).
FULL_SCALE_IMCT_SLOTS = 1.3e9


@dataclass
class ExperimentContext:
    """Shared inputs for building policies against one trace.

    ``daily_counts`` (per-day per-block access counts) doubles as the
    ideal sieve's oracle knowledge and as the popularity analysis input;
    compute it once per trace with :func:`context_for_trace`.

    ``trace`` may be held in either representation; use
    :meth:`object_trace` / :meth:`columnar_trace` to get the form a
    consumer needs (conversions are cached).
    """

    trace: Union[Trace, ColumnarTrace]
    days: int
    scale: float
    daily_counts: List[Counter]
    seed: int = 0
    columnar: Optional[ColumnarTrace] = field(
        default=None, repr=False, compare=False
    )
    _object_cache: Optional[Trace] = field(
        default=None, repr=False, compare=False
    )

    def object_trace(self) -> Trace:
        """The trace in object form (converted from columns if needed)."""
        if isinstance(self.trace, Trace):
            return self.trace
        if self._object_cache is None:
            self._object_cache = self.trace.to_trace()
        return self._object_cache

    def columnar_trace(self) -> ColumnarTrace:
        """The trace in columnar form (converted from objects if needed)."""
        if isinstance(self.trace, ColumnarTrace):
            return self.trace
        if self.columnar is None:
            self.columnar = ColumnarTrace.from_trace(self.trace)
        return self.columnar

    def cache_blocks(self, full_scale_gib: float) -> int:
        """Scaled frame count for a full-scale cache size in GiB."""
        blocks = int(full_scale_gib * GIB / BLOCK_BYTES * self.scale)
        return max(blocks, 64)

    @property
    def sieved_capacity(self) -> int:
        """Scaled frame count of the paper's 16 GB sieved cache."""
        return self.cache_blocks(SIEVED_CACHE_GIB)

    @property
    def unsieved_large_capacity(self) -> int:
        """Scaled frame count of the 32 GB unsieved comparison cache."""
        return self.cache_blocks(UNSIEVED_LARGE_CACHE_GIB)

    @property
    def imct_slots(self) -> int:
        """Scaled IMCT slot count (paper: ~8 GB of sieve state)."""
        return max(1024, int(FULL_SCALE_IMCT_SLOTS * self.scale))


def context_for_trace(
    trace: Union[Trace, ColumnarTrace],
    days: int,
    scale: float,
    seed: int = 0,
    columnar: Optional[ColumnarTrace] = None,
) -> ExperimentContext:
    """Build the shared context (computes daily block counts once).

    Accepts either trace representation; pass ``columnar`` alongside an
    object ``trace`` when both forms already exist so neither gets
    re-derived.  The per-day counts are computed from whichever
    columnar form is available (vectorized), falling back to the
    reference per-block walk for object-only input — the two are
    asserted identical by the test suite.
    """
    if isinstance(trace, ColumnarTrace):
        columns: Optional[ColumnarTrace] = trace
    else:
        columns = columnar
    daily = (
        columns.daily_block_counts(days)
        if columns is not None
        else daily_block_counts(trace, days)
    )
    return ExperimentContext(
        trace=trace,
        days=days,
        scale=scale,
        daily_counts=daily,
        seed=seed,
        columnar=columns,
    )


def build_policy(name: str, ctx: ExperimentContext) -> tuple:
    """Construct (policy, capacity_blocks) for a configuration key.

    Keys: ``ideal``, ``sievestore-d``, ``sievestore-c``,
    ``randsieve-blkd``, ``randsieve-c``, ``aod-16``, ``wmna-16``,
    ``aod-32``, ``wmna-32``.
    """
    sieved = ctx.sieved_capacity
    large = ctx.unsieved_large_capacity
    factories: Dict[str, Callable[[], tuple]] = {
        "ideal": lambda: (
            IdealDailySieve(ctx.daily_counts, capacity_blocks=sieved),
            sieved,
        ),
        "sievestore-d": lambda: (
            SieveStoreD(SieveStoreDConfig(capacity_blocks=sieved)),
            sieved,
        ),
        # The sieve and the unsieved baselines come from the shared
        # admission-gate factory (repro.core.admission), which the live
        # serving layer uses for the very same construction.
        "sievestore-c": lambda: (
            build_admission_gate("sieve", imct_slots=ctx.imct_slots),
            sieved,
        ),
        "randsieve-blkd": lambda: (
            RandSieveBlkD(capacity_blocks=sieved, seed=ctx.seed),
            sieved,
        ),
        "randsieve-c": lambda: (RandSieveC(seed=ctx.seed), sieved),
        "aod-16": lambda: (build_admission_gate("unsieved"), sieved),
        "wmna-16": lambda: (build_admission_gate("read-only"), sieved),
        "aod-32": lambda: (build_admission_gate("unsieved"), large),
        "wmna-32": lambda: (build_admission_gate("read-only"), large),
    }
    if name not in factories:
        raise ValueError(
            f"unknown policy configuration {name!r}; expected one of "
            f"{sorted(factories)}"
        )
    return factories[name]()


def run_policy(
    name: str,
    ctx: ExperimentContext,
    track_minutes: bool = True,
    fast_path: bool = False,
    fault_plan=None,
    epoch_seconds: Optional[float] = None,
    checkpoint_path=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_context: Optional[dict] = None,
    progress_every: Optional[int] = None,
    progress_hook=None,
) -> SimulationResult:
    """Build and simulate one configuration; result is renamed to ``name``.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`),
    ``epoch_seconds``, the checkpoint arguments, and the progress hook
    are forwarded to :func:`~repro.sim.engine.simulate` unchanged; the
    configuration key doubles as the observability label so e.g.
    ``aod-16`` and ``aod-32`` metrics stay distinguishable.
    """
    policy, capacity = build_policy(name, ctx)
    trace = ctx.columnar_trace() if fast_path else ctx.object_trace()
    extra = {}
    if epoch_seconds is not None:
        extra["epoch_seconds"] = epoch_seconds
    result = simulate(
        trace,
        policy,
        capacity_blocks=capacity,
        days=ctx.days,
        track_minutes=track_minutes,
        fast_path=fast_path,
        fault_plan=fault_plan,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        checkpoint_context=checkpoint_context,
        label=name,
        progress_every=progress_every,
        progress_hook=progress_hook,
        **extra,
    )
    result.policy_name = name
    return result


def run_policy_suite(
    ctx: ExperimentContext,
    names: Sequence[str] = FIGURE5_POLICIES,
    track_minutes: bool = True,
    fast_path: bool = False,
    jobs: Optional[int] = 1,
    task_timeout: Optional[float] = None,
    fault_plan=None,
    epoch_seconds: Optional[float] = None,
    checkpoint_dir=None,
    checkpoint_every: Optional[int] = None,
    collect_metrics: Optional[bool] = None,
    on_task_done=None,
    progress_every: Optional[int] = None,
    progress_hook=None,
) -> "SuiteRun":
    """Simulate a set of configurations over the same trace.

    ``jobs`` fans the (independent) policy runs across worker processes
    sharing one serialized columnar trace: ``1`` (default) runs
    serially in-process, ``N > 1`` uses N workers, ``None`` uses all
    cores (affinity-aware).  Results are identical to a serial run in
    every mode.

    Both modes return a :class:`~repro.sim.parallel.SuiteRun`: a
    mapping of policy name to :class:`SimulationResult` for every run
    that completed, plus ``.failures`` (structured per-policy failure
    records) and ``.manifest`` (per-task engine/wall/retries/outcome).
    A failed policy never discards the completed ones; check
    ``suite.ok`` or ``suite.failures`` when robustness matters.
    ``task_timeout`` bounds each parallel task (seconds; one retry
    before a ``"timeout"`` failure record).

    ``fault_plan`` applies the same device-fault schedule to every run;
    ``checkpoint_dir`` makes each task write crash-consistent
    checkpoints to ``<dir>/<policy>.ckpt`` every ``checkpoint_every``
    requests (resume individual tasks with
    :func:`~repro.sim.engine.resume_simulation`).  Both are recorded
    per task in the run manifest.

    ``collect_metrics`` gathers per-task metrics snapshots into
    ``SuiteRun.metrics`` and a v3 manifest (``None`` follows the
    process-wide observability switch); ``on_task_done`` receives each
    finished task's :class:`~repro.sim.parallel.TaskRecord`.  The
    per-request ``progress_every`` / ``progress_hook`` pair only
    applies to serial (``jobs=1``) execution — hooks cannot cross the
    worker process boundary; parallel runs report per task via
    ``on_task_done``.
    """
    if jobs is None or jobs > 1:
        from repro.sim.parallel import run_suite_parallel

        return run_suite_parallel(
            ctx,
            names,
            track_minutes=track_minutes,
            fast_path=fast_path,
            jobs=jobs,
            task_timeout=task_timeout,
            fault_plan=fault_plan,
            epoch_seconds=epoch_seconds,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            collect_metrics=collect_metrics,
            on_task_done=on_task_done,
        )
    from repro.sim.parallel import run_suite_serial

    return run_suite_serial(
        ctx, names, track_minutes=track_minutes, fast_path=fast_path,
        fault_plan=fault_plan, epoch_seconds=epoch_seconds,
        checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
        collect_metrics=collect_metrics, on_task_done=on_task_done,
        progress_every=progress_every, progress_hook=progress_hook,
    )


def sievestore_d_with_threshold(
    ctx: ExperimentContext, threshold: int
) -> SimulationResult:
    """SieveStore-D at a non-default threshold (sensitivity sweeps)."""
    policy = SieveStoreD(
        SieveStoreDConfig(threshold=threshold, capacity_blocks=ctx.sieved_capacity)
    )
    result = simulate(
        ctx.object_trace(), policy, ctx.sieved_capacity, ctx.days, track_minutes=False
    )
    result.policy_name = f"sievestore-d(t={threshold})"
    return result


def sievestore_d_with_epoch(
    ctx: ExperimentContext, epoch_hours: float, threshold: int = 10
) -> SimulationResult:
    """SieveStore-D with a non-daily epoch (Section 5.1 epoch sweep).

    The access-count threshold is pro-rated to the epoch length so a
    shorter epoch does not just demand the daily count inside it (the
    paper's t = 10 is 'per day').
    """
    from repro.sim.engine import simulate as _simulate

    scaled_threshold = max(1, round(threshold * epoch_hours / 24.0))
    policy = SieveStoreD(
        SieveStoreDConfig(
            threshold=scaled_threshold, capacity_blocks=ctx.sieved_capacity
        )
    )
    result = _simulate(
        ctx.object_trace(),
        policy,
        ctx.sieved_capacity,
        ctx.days,
        track_minutes=False,
        epoch_seconds=epoch_hours * 3600.0,
    )
    result.policy_name = f"sievestore-d(epoch={epoch_hours}h,t={scaled_threshold})"
    return result


def sievestore_c_with_window(
    ctx: ExperimentContext,
    window_hours: float,
    subwindows: int = 4,
    t1: Optional[int] = None,
    t2: Optional[int] = None,
    single_tier: bool = False,
    imct_slots: Optional[int] = None,
) -> SimulationResult:
    """SieveStore-C with custom window/thresholds (sensitivity/ablation)."""
    config = SieveStoreCConfig(
        imct_slots=imct_slots if imct_slots is not None else ctx.imct_slots,
        t1=t1 if t1 is not None else 9,
        t2=t2 if t2 is not None else 4,
        window=WindowSpec(window_seconds=window_hours * 3600, subwindows=subwindows),
        single_tier_admission=single_tier,
    )
    policy = SieveStoreC(config)
    result = simulate(
        ctx.object_trace(), policy, ctx.sieved_capacity, ctx.days, track_minutes=False
    )
    label = f"sievestore-c(W={window_hours}h,t1={config.t1},t2={config.t2}"
    if single_tier:
        label += ",single-tier"
    result.policy_name = label + ")"
    return result
