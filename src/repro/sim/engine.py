"""Trace-driven simulation engine.

Drives a :class:`~repro.core.appliance.SieveStoreAppliance` over a
chronological trace, firing epoch boundaries at calendar-day
transitions (which is when the discrete policies batch-allocate) and
accumulating the paper's statistics.

The engine "faithfully model[s] the cache operation including
allocation-writes" (Section 4): every 512-byte block of every request
is individually looked up, counted, and — if the sieve admits it —
allocated at its interpolated completion time.

Two execution paths produce identical results:

* the **object path** (default) walks :class:`~repro.traces.model.Trace`
  request objects through the appliance — the readable reference
  implementation;
* the **fast path** (``fast_path=True``) replays the columnar form of
  the trace through :mod:`repro.sim.fast_engine`'s flat loop, several
  times faster.  It covers LRU replacement with write-through
  accounting (every figure's configuration); other configurations
  transparently use the object path, so ``fast_path=True`` is always
  safe — the engine actually used is recorded in
  :attr:`SimulationResult.engine`, and the first such fallback per
  process emits a :class:`RuntimeWarning`.
"""

from __future__ import annotations

import math
import time as _time
import warnings
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import List, Optional, Union

from repro.cache.allocation import AllocationPolicy
from repro.cache.block_cache import BlockCache
from repro.cache.replacement import make_replacement
from repro.cache.stats import CacheStats
from repro.cache.write_policy import WriteMode
from repro.core.appliance import SieveStoreAppliance
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.traces.columnar import ColumnarTrace, as_columnar, as_object_trace
from repro.traces.model import Trace
from repro.traces.segments import ChunkSource, SegmentStore
from repro.util.intervals import SECONDS_PER_DAY


#: Set once the first silent fast-path fallback has been reported, so a
#: sweep over many unsupported configurations warns exactly once per
#: reset scope.  The suite runners reset it per task (see
#: :func:`_reset_fallback_warnings`), so whether a run warns never
#: depends on what happened to execute earlier in the same process.
_FALLBACK_WARNED = False

#: Default request interval between checkpoints when a checkpoint path
#: is given without an explicit cadence.
DEFAULT_CHECKPOINT_EVERY = 100_000


def _reset_fallback_warnings() -> None:
    """Forget that the fast-path fallback already warned.

    The warn-once latch is process-global; without a reset, whether a
    given ``simulate(fast_path=True)`` call warns depends on execution
    order — a test passing alone could go silent inside the full suite,
    and the first task of a policy suite would mute every later one.
    ``run_policy_suite`` resets per task; tests asserting on the warning
    call this directly.
    """
    global _FALLBACK_WARNED
    _FALLBACK_WARNED = False  # sievelint: disable=SVL008 -- warn-once latch is deliberately per-process


def _warn_fast_path_fallback(
    replacement: str,
    write_mode: WriteMode,
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True  # sievelint: disable=SVL008 -- warn-once latch is deliberately per-process
    detail = f"replacement={replacement!r}, write_mode={write_mode.name}"
    if fault_plan is not None:
        detail += ", fault plan active"
    warnings.warn(
        "fast_path=True fell back to the reference object engine "
        f"({detail}); "
        "results are identical but slower.  Check SimulationResult.engine "
        "to see which engine ran — further fallbacks will not warn.",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one policy run."""

    policy_name: str
    stats: CacheStats
    cache: BlockCache
    policy: AllocationPolicy
    wall_seconds: float
    #: Execution path actually used: ``"fast"`` (columnar loop) or
    #: ``"object"`` (reference engine).  ``fast_path=True`` requests
    #: with an unsupported configuration land here as ``"object"``.
    engine: str = "object"

    @property
    def days(self) -> int:
        """Number of calendar days covered by the run."""
        return self.stats.days

    def daily_capture(self) -> List[float]:
        """Per-day fraction of block accesses captured (hit) by the cache."""
        return [day.hit_ratio for day in self.stats.per_day]

    def daily_allocation_writes(self) -> List[int]:
        """Per-day allocation-write counts (512-byte blocks)."""
        return [day.allocation_writes for day in self.stats.per_day]


def total_epoch_count(days: int, epoch_seconds: float) -> int:
    """Number of epoch boundaries covering ``days`` calendar days.

    Computed on exact rationals: ``int(days * 86400 / epoch_seconds)``
    both truncates partial trailing epochs and, worse, can lose a whole
    epoch to float rounding when ``epoch_seconds`` does not divide the
    day evenly (e.g. 7 h over 8 days is exactly 27.43 epochs, but a
    float quotient landing at 27.999... would truncate to 27 — one
    boundary short).  ``Fraction(float)`` is exact, so the ceiling here
    is exact for every representable epoch length.
    """
    return max(
        1, math.ceil(Fraction(days * SECONDS_PER_DAY) / Fraction(epoch_seconds))
    )


def _fingerprint_object(object_trace: Trace) -> dict:
    """Cheap identity check tying a checkpoint to its trace."""
    requests = object_trace.requests
    if not requests:
        return {"requests": 0, "first_issue": None, "last_issue": None}
    return {
        "requests": len(requests),
        "first_issue": float(requests[0].issue_time),
        "last_issue": float(requests[-1].issue_time),
    }


def _fingerprint_columnar(columns: ColumnarTrace) -> dict:
    n = len(columns.issue_time)
    if not n:
        return {"requests": 0, "first_issue": None, "last_issue": None}
    return {
        "requests": n,
        "first_issue": float(columns.issue_time[0]),
        "last_issue": float(columns.issue_time[-1]),
    }


def _checkpoint_config(
    capacity_blocks: int,
    days: int,
    replacement: str,
    replacement_seed: int,
    track_minutes: bool,
    batch_moves_staggered: bool,
    write_mode: WriteMode,
    epoch_seconds: float,
    total_epochs: int,
    checkpoint_every: int,
) -> dict:
    return {
        "capacity_blocks": capacity_blocks,
        "days": days,
        "replacement": replacement,
        "replacement_seed": replacement_seed,
        "track_minutes": track_minutes,
        "batch_moves_staggered": batch_moves_staggered,
        "write_mode": write_mode.name,
        "epoch_seconds": epoch_seconds,
        "total_epochs": total_epochs,
        "checkpoint_every": checkpoint_every,
    }


def _object_checkpointer(
    target, appliance, config, fingerprint, context, started, base_elapsed
):
    """Checkpoint callback for the object engine: the whole appliance
    (cache + policy + stats + dirty tracker + fault injector) pickles
    as one graph, so a single field captures every piece of state."""
    from repro.sim import serialize  # deferred: serialize imports this module

    def checkpointer(cursor: int, current_epoch: int) -> None:
        serialize.save_checkpoint(
            {
                "engine": "object",
                "cursor": cursor,
                "current_epoch": current_epoch,
                "policy_name": appliance.policy.name,
                "elapsed": base_elapsed + (_time.perf_counter() - started),
                "config": config,
                "trace_fingerprint": fingerprint,
                "context": context,
                "appliance": appliance,
            },
            target,
        )

    return checkpointer


def _fast_checkpointer(
    target, policy, cache, stats, config, fingerprint, context, started, base_elapsed
):
    """Checkpoint callback for the fast engine.  ``simulate_fast``
    resyncs the cache's resident set before invoking it, so pickling
    the three objects captures the exact reference-equivalent state."""
    from repro.sim import serialize  # deferred: serialize imports this module

    def checkpointer(cursor: int, current_epoch: int) -> None:
        serialize.save_checkpoint(
            {
                "engine": "fast",
                "cursor": cursor,
                "current_epoch": current_epoch,
                "policy_name": policy.name,
                "elapsed": base_elapsed + (_time.perf_counter() - started),
                "config": config,
                "trace_fingerprint": fingerprint,
                "context": context,
                "policy": policy,
                "cache": cache,
                "stats": stats,
            },
            target,
        )

    return checkpointer


def _run_object_loop(
    appliance: SieveStoreAppliance,
    requests,
    epoch_seconds: float,
    total_epochs: int,
    days: int,
    start_index: int = 0,
    start_epoch: int = -1,
    checkpoint_every: Optional[int] = None,
    checkpointer=None,
    boundary_hook=None,
    progress_every: Optional[int] = None,
    progress_hook=None,
) -> None:
    """The reference request loop, shared by fresh runs and resumes."""
    current_epoch = start_epoch
    for index in range(start_index, len(requests)):
        request = requests[index]
        request_epoch = int(request.issue_time // epoch_seconds)
        while current_epoch < request_epoch:
            current_epoch += 1
            appliance.begin_day(current_epoch)
            if boundary_hook is not None:
                boundary_hook(current_epoch, index)
        appliance.process_request(request)
        if checkpoint_every is not None and (index + 1) % checkpoint_every == 0:
            checkpointer(index + 1, current_epoch)
        if progress_every is not None and (index + 1) % progress_every == 0:
            progress_hook(index + 1, current_epoch)
    # Fire any remaining boundaries so discrete policies finish their
    # final epoch bookkeeping (no accesses follow, so no hits change).
    while current_epoch < total_epochs - 1:
        current_epoch += 1
        appliance.begin_day(current_epoch)
        if boundary_hook is not None:
            boundary_hook(current_epoch, len(requests))
    appliance.flush_dirty(time=float(days) * SECONDS_PER_DAY - 1.0)


def _run_object_loop_chunks(
    appliance: SieveStoreAppliance,
    chunks,
    epoch_seconds: float,
    total_epochs: int,
    days: int,
    start_cursor: int = 0,
    start_epoch: int = -1,
    checkpoint_every: Optional[int] = None,
    checkpointer=None,
    boundary_hook=None,
    progress_every: Optional[int] = None,
    progress_hook=None,
    segment_hook=None,
) -> None:
    """The reference loop over a stream of ``(base_row, columns)`` chunks.

    The out-of-core twin of :func:`_run_object_loop`: only one chunk's
    worth of :class:`~repro.traces.model.IORequest` objects exists at a
    time, so peak memory follows the chunk budget rather than the
    trace.  Per-request processing, epoch boundaries, and checkpoint
    cadence are byte-identical to the whole-trace loop — the appliance
    cannot observe where one chunk ends and the next begins.
    ``segment_hook(cursor, current_epoch)`` fires after each chunk (the
    appliance pickles consistently at any request boundary), giving
    out-of-core runs a per-segment checkpoint site.
    """
    current_epoch = start_epoch
    cursor = start_cursor
    for base, columns in chunks:
        requests = columns.to_trace().requests
        local_start = max(0, cursor - base)
        for local in range(local_start, len(requests)):
            index = base + local
            request = requests[local]
            request_epoch = int(request.issue_time // epoch_seconds)
            while current_epoch < request_epoch:
                current_epoch += 1
                appliance.begin_day(current_epoch)
                if boundary_hook is not None:
                    boundary_hook(current_epoch, index)
            appliance.process_request(request)
            if checkpoint_every is not None and (index + 1) % checkpoint_every == 0:
                checkpointer(index + 1, current_epoch)
            if progress_every is not None and (index + 1) % progress_every == 0:
                progress_hook(index + 1, current_epoch)
        cursor = max(cursor, base + len(requests))
        if segment_hook is not None:
            segment_hook(cursor, current_epoch)
    while current_epoch < total_epochs - 1:
        current_epoch += 1
        appliance.begin_day(current_epoch)
        if boundary_hook is not None:
            boundary_hook(current_epoch, cursor)
    appliance.flush_dirty(time=float(days) * SECONDS_PER_DAY - 1.0)


def _convert_checkpoint_engine(payload: dict, target: str) -> dict:
    """Rewrite a checkpoint payload in the other engine's layout.

    The two engines snapshot the same logical state — policy metastate,
    cache contents (resident set resynced before every checkpoint), and
    statistics — in different containers: the object engine pickles the
    whole appliance, the fast engine the three pieces.  Because both
    produce bit-identical state at any request cursor, a checkpoint
    written by one can seed the other: fast -> object wraps the pieces
    in a fresh appliance (write-through means the dirty tracker is
    empty and health starts HEALTHY), object -> fast extracts them,
    refusing configurations the fast loop cannot replay.
    """
    from repro.sim.serialize import CheckpointError

    source = payload["engine"]
    if target == source:
        return payload
    config = payload["config"]
    converted = dict(payload)
    converted["engine"] = target
    if target == "object":
        appliance = SieveStoreAppliance(
            payload["cache"],
            payload["policy"],
            payload["stats"],
            batch_moves_staggered=config["batch_moves_staggered"],
            write_mode=WriteMode[config["write_mode"]],
            epoch_seconds=config["epoch_seconds"],
            faults=None,
        )
        for key in ("policy", "cache", "stats"):
            del converted[key]
        converted["appliance"] = appliance
        return converted
    if target != "fast":
        raise CheckpointError(f"unknown resume engine {target!r}")
    if config["replacement"] != "lru" or config["write_mode"] != "WRITE_THROUGH":
        raise CheckpointError(
            "cannot resume on the fast engine: it supports only LRU "
            f"write-through, checkpoint has replacement="
            f"{config['replacement']!r}, write_mode={config['write_mode']!r}"
        )
    appliance = payload["appliance"]
    if appliance.faults is not None:
        raise CheckpointError(
            "cannot resume a fault-injected run on the fast engine"
        )
    del converted["appliance"]
    converted["policy"] = appliance.policy
    converted["cache"] = appliance.cache
    converted["stats"] = appliance.stats
    return converted


def _finalize_faults(
    stats: CacheStats, faults: Optional[FaultInjector], days: int
) -> None:
    """Assign (not accumulate) degraded/bypass wall time, so finalizing
    after a resume cannot double-count."""
    if faults is None:
        return
    degraded, bypass = faults.time_in_states(float(days) * SECONDS_PER_DAY)
    stats.degraded_seconds = degraded
    stats.bypass_seconds = bypass


@dataclass
class _EngineObs:
    """Engine-side hooks resolved from the active observability context.

    Exists only while observability is enabled; every engine call site
    tests a single ``obs is not None`` otherwise, which keeps the
    disabled path byte-identical to a build without :mod:`repro.obs`.
    """

    registry: object
    events: object
    label: str
    engine: str
    boundary_hook: object
    health_observer: object

    def emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    def wrap_checkpointer(self, checkpointer):
        """Log a ``checkpoint_saved`` event after each checkpoint write."""
        if checkpointer is None or self.events is None:
            return checkpointer

        def wrapped(cursor: int, current_epoch: int) -> None:
            checkpointer(cursor, current_epoch)
            self.events.emit(
                "checkpoint_saved",
                policy=self.label,
                cursor=cursor,
                epoch=current_epoch,
            )

        return wrapped

    def finish(self, policy, requests: int, stats, wall: float) -> None:
        """Adopt the run's tallies into the registry, emit ``run_end``."""
        from repro.obs import instrument

        instrument.sample_sieve_metrics(self.registry, policy, self.label)
        instrument.record_run_throughput(
            self.registry,
            self.label,
            self.engine,
            requests,
            stats.total.accesses,
            wall,
        )
        self.emit(
            "run_end",
            policy=self.label,
            engine=self.engine,
            requests=requests,
            blocks=stats.total.accesses,
            seconds=round(wall, 6),
        )


def _engine_obs(policy, label: str, engine_name: str) -> Optional[_EngineObs]:
    """Build engine hooks when observability is on, else ``None``."""
    from repro.obs import runtime as _obs_runtime

    context = _obs_runtime.get_context()
    if context is None:
        return None
    from repro.obs import instrument

    instrument.enable_policy_tracking(policy)
    return _EngineObs(
        registry=context.registry,
        events=context.events,
        label=label,
        engine=engine_name,
        boundary_hook=instrument.make_epoch_timer(
            context.registry, label, engine_name
        ),
        health_observer=instrument.make_health_observer(
            context.registry, label, context.events
        ),
    )


def simulate(
    trace: Union[Trace, ColumnarTrace, ChunkSource],
    policy: AllocationPolicy,
    capacity_blocks: int,
    days: int,
    replacement: str = "lru",
    track_minutes: bool = True,
    batch_moves_staggered: bool = True,
    replacement_seed: int = 0,
    write_mode: WriteMode = WriteMode.WRITE_THROUGH,
    epoch_seconds: float = float(SECONDS_PER_DAY),
    fast_path: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_context: Optional[dict] = None,
    label: Optional[str] = None,
    progress_every: Optional[int] = None,
    progress_hook=None,
    chunk_rows: Optional[int] = None,
) -> SimulationResult:
    """Run one allocation policy over a trace.

    Args:
        trace: chronological ensemble trace — object :class:`Trace`,
            :class:`ColumnarTrace`, or an on-disk
            :class:`~repro.traces.segments.SegmentStore`.  In-RAM forms
            are converted as the execution path requires; a segment
            store is streamed chunk by chunk through either engine
            (bounded peak memory, bit-identical statistics, and a
            checkpoint after every chunk when checkpointing is on).
        policy: the allocation policy / sieve under test.
        capacity_blocks: cache capacity in 512-byte frames.
        days: calendar days covered by the trace.
        replacement: replacement policy name; the paper uses LRU for
            every continuous configuration.
        track_minutes: collect per-minute SSD I/O (needed for the
            drive-occupancy figures; costs some memory).
        batch_moves_staggered: see
            :class:`~repro.core.appliance.SieveStoreAppliance`.
        replacement_seed: seed for the 'random' replacement policy.
        write_mode: write-through (paper-equivalent default) or
            write-back; see
            :class:`~repro.core.appliance.SieveStoreAppliance`.  Dirty
            blocks are flushed at end of trace.
        epoch_seconds: period of the discrete policies' batch
            boundaries.  The paper's epoch is one calendar day; shorter
            or longer epochs drive the Section 5.1 epoch-length
            sensitivity analysis.  Statistics stay calendar-day
            bucketed regardless.
        fast_path: replay the columnar trace through the flat fast
            loop (bit-identical statistics).  Configurations the fast
            path does not cover — non-LRU replacement, write-back —
            transparently fall back to the object path; the fallback is
            recorded in :attr:`SimulationResult.engine` and warned
            about once per process.
        fault_plan: optional device-fault schedule
            (:class:`~repro.faults.plan.FaultPlan`).  An empty plan is
            treated exactly like ``None`` (byte-identical output); a
            non-empty plan routes to the object engine, which drives
            the appliance's device-health state machine.
        checkpoint_path: if given, crash-consistent checkpoints are
            written here every ``checkpoint_every`` requests; resume
            with :func:`resume_simulation` for bit-identical final
            statistics.
        checkpoint_every: requests between checkpoints (default
            :data:`DEFAULT_CHECKPOINT_EVERY` when a path is given).
        checkpoint_context: opaque dict stored verbatim inside each
            checkpoint (the CLI records its trace arguments here so
            ``--resume`` can regenerate the trace).
        label: name used for observability metric labels and events
            (defaults to ``policy.name``; suite runners pass the
            registry key so e.g. ``aod-16`` and ``aod-32`` stay
            distinguishable).  Never affects simulation output.
        progress_every: invoke ``progress_hook(requests_done,
            current_epoch)`` every this many requests (the CLI's
            ``--progress`` heartbeat).  ``None`` disables it with zero
            hot-loop cost beyond one predicate test per request.
        progress_hook: callable receiving ``(requests_done,
            current_epoch)``; must not mutate simulation state.
        chunk_rows: row budget per streamed chunk when ``trace`` is a
            :class:`~repro.traces.segments.SegmentStore` (default
            :data:`~repro.traces.segments.DEFAULT_CHUNK_ROWS`; chunks
            never span segments).  Ignored for in-RAM traces.
    """
    if epoch_seconds <= 0:
        raise ValueError(f"epoch_seconds must be positive, got {epoch_seconds}")
    total_epochs = total_epoch_count(days, epoch_seconds)
    if fault_plan is not None and fault_plan.is_empty:
        fault_plan = None
    if checkpoint_every is not None and checkpoint_every <= 0:
        raise ValueError(
            f"checkpoint_every must be positive, got {checkpoint_every}"
        )
    if checkpoint_path is not None and checkpoint_every is None:
        checkpoint_every = DEFAULT_CHECKPOINT_EVERY
    if checkpoint_path is None:
        checkpoint_every = None

    use_fast = (
        fast_path
        and replacement == "lru"
        and write_mode is WriteMode.WRITE_THROUGH
        and fault_plan is None
    )
    if fast_path and not use_fast:
        _warn_fast_path_fallback(replacement, write_mode, fault_plan)
    segmented = isinstance(trace, ChunkSource)
    if use_fast:
        from repro.sim.fast_engine import simulate_fast_chunks

        if segmented:
            columns = None
            fingerprint = trace.fingerprint()
            n_requests = len(trace)
        else:
            columns = as_columnar(trace)
            fingerprint = _fingerprint_columnar(columns)
            n_requests = len(columns.issue_time)
        stats = CacheStats(days=days, track_minutes=track_minutes)
        cache = BlockCache(
            capacity_blocks,
            replacement=make_replacement(replacement, seed=replacement_seed),
        )
        obs = _engine_obs(policy, label or policy.name, "fast")
        if obs is not None:
            obs.emit(
                "run_start",
                policy=obs.label,
                engine="fast",
                requests=n_requests,
                days=days,
                epoch_seconds=epoch_seconds,
            )
        started = _time.perf_counter()
        checkpointer = None
        if checkpoint_path is not None:
            checkpointer = _fast_checkpointer(
                str(checkpoint_path),
                policy,
                cache,
                stats,
                _checkpoint_config(
                    capacity_blocks,
                    days,
                    replacement,
                    replacement_seed,
                    track_minutes,
                    batch_moves_staggered,
                    write_mode,
                    epoch_seconds,
                    total_epochs,
                    checkpoint_every,
                ),
                fingerprint,
                checkpoint_context,
                started,
                0.0,
            )
        if obs is not None:
            checkpointer = obs.wrap_checkpointer(checkpointer)
        chunks = (
            trace.iter_chunks(chunk_rows) if segmented else [(0, columns)]
        )
        stats, cache = simulate_fast_chunks(
            chunks,
            policy,
            capacity_blocks=capacity_blocks,
            days=days,
            track_minutes=track_minutes,
            batch_moves_staggered=batch_moves_staggered,
            epoch_seconds=epoch_seconds,
            total_epochs=total_epochs,
            stats=stats,
            cache=cache,
            checkpoint_every=checkpoint_every,
            checkpointer=checkpointer,
            boundary_hook=obs.boundary_hook if obs is not None else None,
            progress_every=progress_every,
            progress_hook=progress_hook,
            # Out-of-core runs also checkpoint at every chunk boundary:
            # the state is already consistent there, and a resume then
            # reopens only the segments past the cursor.
            segment_hook=checkpointer if segmented else None,
        )
        wall = _time.perf_counter() - started
        if obs is not None:
            obs.finish(policy, n_requests, stats, wall)
        stats.check_consistency()
        return SimulationResult(
            policy_name=policy.name,
            stats=stats,
            cache=cache,
            policy=policy,
            wall_seconds=wall,
            engine="fast",
        )

    if segmented:
        object_trace = None
        fingerprint = trace.fingerprint()
        n_requests = len(trace)
    else:
        object_trace = as_object_trace(trace)
        fingerprint = _fingerprint_object(object_trace)
        n_requests = len(object_trace.requests)
    stats = CacheStats(days=days, track_minutes=track_minutes)
    cache = BlockCache(
        capacity_blocks, replacement=make_replacement(replacement, seed=replacement_seed)
    )
    appliance = SieveStoreAppliance(
        cache,
        policy,
        stats,
        batch_moves_staggered=batch_moves_staggered,
        write_mode=write_mode,
        epoch_seconds=epoch_seconds,
        faults=FaultInjector(fault_plan) if fault_plan is not None else None,
    )
    obs = _engine_obs(policy, label or policy.name, "object")
    if obs is not None:
        appliance.health_observer = obs.health_observer
        obs.emit(
            "run_start",
            policy=obs.label,
            engine="object",
            requests=n_requests,
            days=days,
            epoch_seconds=epoch_seconds,
        )

    started = _time.perf_counter()
    checkpointer = None
    if checkpoint_path is not None:
        checkpointer = _object_checkpointer(
            str(checkpoint_path),
            appliance,
            _checkpoint_config(
                capacity_blocks,
                days,
                replacement,
                replacement_seed,
                track_minutes,
                batch_moves_staggered,
                write_mode,
                epoch_seconds,
                total_epochs,
                checkpoint_every,
            ),
            fingerprint,
            checkpoint_context,
            started,
            0.0,
        )
    if obs is not None:
        checkpointer = obs.wrap_checkpointer(checkpointer)
    if segmented:
        _run_object_loop_chunks(
            appliance,
            trace.iter_chunks(chunk_rows),
            epoch_seconds,
            total_epochs,
            days,
            checkpoint_every=checkpoint_every,
            checkpointer=checkpointer,
            boundary_hook=obs.boundary_hook if obs is not None else None,
            progress_every=progress_every,
            progress_hook=progress_hook,
            segment_hook=checkpointer,
        )
    else:
        _run_object_loop(
            appliance,
            object_trace.requests,
            epoch_seconds,
            total_epochs,
            days,
            checkpoint_every=checkpoint_every,
            checkpointer=checkpointer,
            boundary_hook=obs.boundary_hook if obs is not None else None,
            progress_every=progress_every,
            progress_hook=progress_hook,
        )
    wall = _time.perf_counter() - started

    _finalize_faults(stats, appliance.faults, days)
    if obs is not None:
        obs.finish(policy, n_requests, stats, wall)
    stats.check_consistency()
    return SimulationResult(
        policy_name=policy.name,
        stats=stats,
        cache=cache,
        policy=policy,
        wall_seconds=wall,
        engine="object",
    )


def resume_simulation(
    path: Union[str, Path],
    trace: Union[Trace, ColumnarTrace, ChunkSource, None] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    progress_every: Optional[int] = None,
    progress_hook=None,
    engine: Optional[str] = None,
    chunk_rows: Optional[int] = None,
) -> SimulationResult:
    """Continue a checkpointed run to completion.

    The final :class:`SimulationResult` carries statistics bit-identical
    to the uninterrupted run's (per-day *and* per-minute), in whichever
    engine wrote the checkpoint.  Checkpointing continues at the stored
    cadence, to ``checkpoint_path`` if given, else back to ``path``.

    Args:
        path: checkpoint file written by :func:`simulate`.
        trace: the *same* trace the original run consumed (checked
            against the checkpoint's trace fingerprint).  Checkpoints
            do not embed the trace; the CLI regenerates it from the
            trace arguments stored in the checkpoint context.  A
            :class:`~repro.traces.segments.SegmentStore` interoperates
            with in-RAM checkpoints (and vice versa): segment
            fingerprints round-trip exactly, and segments wholly behind
            the checkpoint cursor are never opened.
        chunk_rows: per-chunk row budget when ``trace`` is a segment
            store; ignored otherwise.
        checkpoint_path: where to keep writing checkpoints (defaults to
            overwriting ``path``).
        engine: resume on this engine (``"fast"`` or ``"object"``)
            instead of the one that wrote the checkpoint.  Both engines
            snapshot the same logical state, so final statistics stay
            bit-identical either way; resuming a non-LRU, write-back,
            or fault-injected checkpoint on the fast engine raises.

    Raises:
        CheckpointError: unreadable/corrupt/incompatible checkpoint, a
            missing trace, a trace that does not match, or an ``engine``
            the checkpointed configuration cannot run on.
    """
    from repro.sim.serialize import CheckpointError, load_checkpoint

    payload = load_checkpoint(path)
    if trace is None:
        raise CheckpointError(
            "checkpoints do not embed the trace; pass the original trace "
            "(the CLI's --resume regenerates it from the checkpoint context)"
        )
    if engine is not None:
        payload = _convert_checkpoint_engine(payload, engine)
    config = payload["config"]
    days = config["days"]
    epoch_seconds = config["epoch_seconds"]
    total_epochs = config["total_epochs"]
    checkpoint_every = config.get("checkpoint_every")
    target = str(checkpoint_path) if checkpoint_path is not None else str(path)
    engine_kind = payload["engine"]
    expected = payload["trace_fingerprint"]

    segmented = isinstance(trace, ChunkSource)
    if segmented:
        columns = object_trace = None
        actual = trace.fingerprint()
        n_requests = len(trace)
    elif engine_kind == "fast":
        columns = as_columnar(trace)
        actual = _fingerprint_columnar(columns)
        n_requests = len(columns.issue_time)
    else:
        object_trace = as_object_trace(trace)
        actual = _fingerprint_object(object_trace)
        n_requests = len(object_trace.requests)
    if actual != expected:
        raise CheckpointError(
            f"trace does not match checkpoint: expected {expected}, got {actual}"
        )

    base_elapsed = payload.get("elapsed", 0.0)
    started = _time.perf_counter()
    if engine_kind == "object":
        appliance = payload["appliance"]
        obs = _engine_obs(appliance.policy, payload["policy_name"], "object")
        if obs is not None:
            appliance.health_observer = obs.health_observer
            obs.emit(
                "run_resume",
                policy=obs.label,
                engine="object",
                cursor=payload["cursor"],
                requests=n_requests,
            )
        checkpointer = _object_checkpointer(
            target,
            appliance,
            config,
            expected,
            payload.get("context"),
            started,
            base_elapsed,
        )
        if obs is not None:
            checkpointer = obs.wrap_checkpointer(checkpointer)
        if segmented:
            _run_object_loop_chunks(
                appliance,
                trace.iter_chunks(chunk_rows, start_row=payload["cursor"]),
                epoch_seconds,
                total_epochs,
                days,
                start_cursor=payload["cursor"],
                start_epoch=payload["current_epoch"],
                checkpoint_every=checkpoint_every,
                checkpointer=checkpointer,
                boundary_hook=obs.boundary_hook if obs is not None else None,
                progress_every=progress_every,
                progress_hook=progress_hook,
                segment_hook=checkpointer,
            )
        else:
            _run_object_loop(
                appliance,
                object_trace.requests,
                epoch_seconds,
                total_epochs,
                days,
                start_index=payload["cursor"],
                start_epoch=payload["current_epoch"],
                checkpoint_every=checkpoint_every,
                checkpointer=checkpointer,
                boundary_hook=obs.boundary_hook if obs is not None else None,
                progress_every=progress_every,
                progress_hook=progress_hook,
            )
        stats = appliance.stats
        cache = appliance.cache
        policy = appliance.policy
        _finalize_faults(stats, appliance.faults, days)
    elif engine_kind == "fast":
        from repro.sim.fast_engine import simulate_fast_chunks

        policy = payload["policy"]
        cache = payload["cache"]
        stats = payload["stats"]
        obs = _engine_obs(policy, payload["policy_name"], "fast")
        if obs is not None:
            obs.emit(
                "run_resume",
                policy=obs.label,
                engine="fast",
                cursor=payload["cursor"],
                requests=n_requests,
            )
        checkpointer = _fast_checkpointer(
            target,
            policy,
            cache,
            stats,
            config,
            expected,
            payload.get("context"),
            started,
            base_elapsed,
        )
        if obs is not None:
            checkpointer = obs.wrap_checkpointer(checkpointer)
        chunks = (
            trace.iter_chunks(chunk_rows, start_row=payload["cursor"])
            if segmented
            else [(0, columns)]
        )
        stats, cache = simulate_fast_chunks(
            chunks,
            policy,
            capacity_blocks=config["capacity_blocks"],
            days=days,
            track_minutes=config["track_minutes"],
            batch_moves_staggered=config["batch_moves_staggered"],
            epoch_seconds=epoch_seconds,
            total_epochs=total_epochs,
            stats=stats,
            cache=cache,
            start_cursor=payload["cursor"],
            start_epoch=payload["current_epoch"],
            checkpoint_every=checkpoint_every,
            checkpointer=checkpointer,
            boundary_hook=obs.boundary_hook if obs is not None else None,
            progress_every=progress_every,
            progress_hook=progress_hook,
            segment_hook=checkpointer if segmented else None,
        )
    else:
        raise CheckpointError(f"unknown checkpoint engine {engine_kind!r}")

    wall = base_elapsed + (_time.perf_counter() - started)
    if obs is not None:
        obs.finish(policy, payload["trace_fingerprint"]["requests"], stats, wall)
    stats.check_consistency()
    return SimulationResult(
        policy_name=payload["policy_name"],
        stats=stats,
        cache=cache,
        policy=policy,
        wall_seconds=wall,
        engine=engine_kind,
    )
