"""Trace-driven simulation engine.

Drives a :class:`~repro.core.appliance.SieveStoreAppliance` over a
chronological trace, firing epoch boundaries at calendar-day
transitions (which is when the discrete policies batch-allocate) and
accumulating the paper's statistics.

The engine "faithfully model[s] the cache operation including
allocation-writes" (Section 4): every 512-byte block of every request
is individually looked up, counted, and — if the sieve admits it —
allocated at its interpolated completion time.

Two execution paths produce identical results:

* the **object path** (default) walks :class:`~repro.traces.model.Trace`
  request objects through the appliance — the readable reference
  implementation;
* the **fast path** (``fast_path=True``) replays the columnar form of
  the trace through :mod:`repro.sim.fast_engine`'s flat loop, several
  times faster.  It covers LRU replacement with write-through
  accounting (every figure's configuration); other configurations
  transparently use the object path, so ``fast_path=True`` is always
  safe — the engine actually used is recorded in
  :attr:`SimulationResult.engine`, and the first such fallback per
  process emits a :class:`RuntimeWarning`.
"""

from __future__ import annotations

import math
import time as _time
import warnings
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Union

from repro.cache.allocation import AllocationPolicy
from repro.cache.block_cache import BlockCache
from repro.cache.replacement import make_replacement
from repro.cache.stats import CacheStats
from repro.cache.write_policy import WriteMode
from repro.core.appliance import SieveStoreAppliance
from repro.traces.columnar import ColumnarTrace, as_columnar, as_object_trace
from repro.traces.model import Trace
from repro.util.intervals import SECONDS_PER_DAY


#: Set once the first silent fast-path fallback has been reported, so a
#: sweep over many unsupported configurations warns exactly once.
_FALLBACK_WARNED = False


def _warn_fast_path_fallback(replacement: str, write_mode: WriteMode) -> None:
    global _FALLBACK_WARNED
    if _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED = True
    warnings.warn(
        "fast_path=True fell back to the reference object engine "
        f"(replacement={replacement!r}, write_mode={write_mode.name}); "
        "results are identical but slower.  Check SimulationResult.engine "
        "to see which engine ran — further fallbacks will not warn.",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one policy run."""

    policy_name: str
    stats: CacheStats
    cache: BlockCache
    policy: AllocationPolicy
    wall_seconds: float
    #: Execution path actually used: ``"fast"`` (columnar loop) or
    #: ``"object"`` (reference engine).  ``fast_path=True`` requests
    #: with an unsupported configuration land here as ``"object"``.
    engine: str = "object"

    @property
    def days(self) -> int:
        """Number of calendar days covered by the run."""
        return self.stats.days

    def daily_capture(self) -> List[float]:
        """Per-day fraction of block accesses captured (hit) by the cache."""
        return [day.hit_ratio for day in self.stats.per_day]

    def daily_allocation_writes(self) -> List[int]:
        """Per-day allocation-write counts (512-byte blocks)."""
        return [day.allocation_writes for day in self.stats.per_day]


def total_epoch_count(days: int, epoch_seconds: float) -> int:
    """Number of epoch boundaries covering ``days`` calendar days.

    Computed on exact rationals: ``int(days * 86400 / epoch_seconds)``
    both truncates partial trailing epochs and, worse, can lose a whole
    epoch to float rounding when ``epoch_seconds`` does not divide the
    day evenly (e.g. 7 h over 8 days is exactly 27.43 epochs, but a
    float quotient landing at 27.999... would truncate to 27 — one
    boundary short).  ``Fraction(float)`` is exact, so the ceiling here
    is exact for every representable epoch length.
    """
    return max(
        1, math.ceil(Fraction(days * SECONDS_PER_DAY) / Fraction(epoch_seconds))
    )


def simulate(
    trace: Union[Trace, ColumnarTrace],
    policy: AllocationPolicy,
    capacity_blocks: int,
    days: int,
    replacement: str = "lru",
    track_minutes: bool = True,
    batch_moves_staggered: bool = True,
    replacement_seed: int = 0,
    write_mode: WriteMode = WriteMode.WRITE_THROUGH,
    epoch_seconds: float = float(SECONDS_PER_DAY),
    fast_path: bool = False,
) -> SimulationResult:
    """Run one allocation policy over a trace.

    Args:
        trace: chronological ensemble trace, in either representation
            (object :class:`Trace` or :class:`ColumnarTrace`); it is
            converted as the execution path requires.
        policy: the allocation policy / sieve under test.
        capacity_blocks: cache capacity in 512-byte frames.
        days: calendar days covered by the trace.
        replacement: replacement policy name; the paper uses LRU for
            every continuous configuration.
        track_minutes: collect per-minute SSD I/O (needed for the
            drive-occupancy figures; costs some memory).
        batch_moves_staggered: see
            :class:`~repro.core.appliance.SieveStoreAppliance`.
        replacement_seed: seed for the 'random' replacement policy.
        write_mode: write-through (paper-equivalent default) or
            write-back; see
            :class:`~repro.core.appliance.SieveStoreAppliance`.  Dirty
            blocks are flushed at end of trace.
        epoch_seconds: period of the discrete policies' batch
            boundaries.  The paper's epoch is one calendar day; shorter
            or longer epochs drive the Section 5.1 epoch-length
            sensitivity analysis.  Statistics stay calendar-day
            bucketed regardless.
        fast_path: replay the columnar trace through the flat fast
            loop (bit-identical statistics).  Configurations the fast
            path does not cover — non-LRU replacement, write-back —
            transparently fall back to the object path; the fallback is
            recorded in :attr:`SimulationResult.engine` and warned
            about once per process.
    """
    if epoch_seconds <= 0:
        raise ValueError(f"epoch_seconds must be positive, got {epoch_seconds}")
    total_epochs = total_epoch_count(days, epoch_seconds)

    use_fast = (
        fast_path
        and replacement == "lru"
        and write_mode is WriteMode.WRITE_THROUGH
    )
    if fast_path and not use_fast:
        _warn_fast_path_fallback(replacement, write_mode)
    if use_fast:
        from repro.sim.fast_engine import simulate_fast

        columns = as_columnar(trace)
        started = _time.perf_counter()
        stats, cache = simulate_fast(
            columns,
            policy,
            capacity_blocks=capacity_blocks,
            days=days,
            track_minutes=track_minutes,
            batch_moves_staggered=batch_moves_staggered,
            epoch_seconds=epoch_seconds,
            total_epochs=total_epochs,
        )
        wall = _time.perf_counter() - started
        stats.check_consistency()
        return SimulationResult(
            policy_name=policy.name,
            stats=stats,
            cache=cache,
            policy=policy,
            wall_seconds=wall,
            engine="fast",
        )

    object_trace = as_object_trace(trace)
    stats = CacheStats(days=days, track_minutes=track_minutes)
    cache = BlockCache(
        capacity_blocks, replacement=make_replacement(replacement, seed=replacement_seed)
    )
    appliance = SieveStoreAppliance(
        cache,
        policy,
        stats,
        batch_moves_staggered=batch_moves_staggered,
        write_mode=write_mode,
        epoch_seconds=epoch_seconds,
    )

    started = _time.perf_counter()
    current_epoch = -1
    for request in object_trace:
        request_epoch = int(request.issue_time // epoch_seconds)
        while current_epoch < request_epoch:
            current_epoch += 1
            appliance.begin_day(current_epoch)
        appliance.process_request(request)
    # Fire any remaining boundaries so discrete policies finish their
    # final epoch bookkeeping (no accesses follow, so no hits change).
    while current_epoch < total_epochs - 1:
        current_epoch += 1
        appliance.begin_day(current_epoch)
    appliance.flush_dirty(time=float(days) * SECONDS_PER_DAY - 1.0)
    wall = _time.perf_counter() - started

    stats.check_consistency()
    return SimulationResult(
        policy_name=policy.name,
        stats=stats,
        cache=cache,
        policy=policy,
        wall_seconds=wall,
        engine="object",
    )
