"""Trace-driven simulation: engine, experiment configurations, metrics."""

from repro.sim.engine import SimulationResult, simulate
from repro.sim.experiment import (
    FIGURE5_POLICIES,
    ExperimentContext,
    build_policy,
    context_for_trace,
    run_policy,
    run_policy_suite,
    sievestore_c_with_window,
    sievestore_d_with_epoch,
    sievestore_d_with_threshold,
)
from repro.sim.parallel import (
    PolicyFailure,
    SuiteRun,
    TaskRecord,
    default_jobs,
    run_suite_parallel,
    run_suite_serial,
)
from repro.sim.serialize import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
    stats_from_dict,
    stats_to_dict,
)
from repro.sim.metrics import (
    allocation_write_series,
    capture_breakdown,
    capture_improvement,
    capture_series,
    mean_capture,
    ssd_operation_series,
    total_allocation_writes,
)

__all__ = [
    "SimulationResult",
    "simulate",
    "FIGURE5_POLICIES",
    "ExperimentContext",
    "build_policy",
    "context_for_trace",
    "run_policy",
    "run_policy_suite",
    "PolicyFailure",
    "SuiteRun",
    "TaskRecord",
    "default_jobs",
    "run_suite_parallel",
    "run_suite_serial",
    "sievestore_c_with_window",
    "sievestore_d_with_epoch",
    "sievestore_d_with_threshold",
    "load_result",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "stats_from_dict",
    "stats_to_dict",
    "allocation_write_series",
    "capture_breakdown",
    "capture_improvement",
    "capture_series",
    "mean_capture",
    "ssd_operation_series",
    "total_allocation_writes",
]
