"""Figure-series builders: turn simulation results into the paper's plots.

Each function returns plain dict/list structures that the report
renderers (:mod:`repro.analysis.report`) and the benchmark harnesses
print; nothing here depends on a plotting library.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.sim.engine import SimulationResult


def capture_series(results: Mapping[str, SimulationResult]) -> Dict[str, List[float]]:
    """Figure 5: per-day fraction of accesses captured, per configuration."""
    return {name: result.daily_capture() for name, result in results.items()}


def capture_breakdown(
    results: Mapping[str, SimulationResult]
) -> Dict[str, List[dict]]:
    """Figure 5's read/write split: per-day captured reads and writes
    as fractions of the day's total accesses."""
    series: Dict[str, List[dict]] = {}
    for name, result in results.items():
        days = []
        for day in result.stats.per_day:
            total = day.accesses or 1
            days.append(
                {
                    "read_hits": day.read_hits / total,
                    "write_hits": day.write_hits / total,
                    "captured": day.hit_ratio,
                }
            )
        series[name] = days
    return series


def allocation_write_series(
    results: Mapping[str, SimulationResult]
) -> Dict[str, List[int]]:
    """Figure 6: per-day allocation-writes (512-byte blocks), per config."""
    return {name: result.daily_allocation_writes() for name, result in results.items()}


def ssd_operation_series(
    results: Mapping[str, SimulationResult]
) -> Dict[str, List[dict]]:
    """Figure 7: per-day SSD ops split into read hits / write hits /
    allocation-writes (512-byte block granularity)."""
    series: Dict[str, List[dict]] = {}
    for name, result in results.items():
        series[name] = [
            {
                "read_hits": day.read_hits,
                "write_hits": day.write_hits,
                "allocation_writes": day.allocation_writes,
                "total": day.ssd_operations,
            }
            for day in result.stats.per_day
        ]
    return series


def mean_capture(
    result: SimulationResult, skip_days: Sequence[int] = ()
) -> float:
    """Average daily capture, optionally skipping bootstrap days.

    The paper excludes day 1 from SieveStore-D's average ("the average
    excludes the first day") because the sieve needs a day of logs.
    """
    values = [
        day.hit_ratio
        for index, day in enumerate(result.stats.per_day)
        if index not in skip_days and day.accesses
    ]
    return sum(values) / len(values) if values else 0.0


def total_allocation_writes(result: SimulationResult) -> int:
    """Whole-run allocation-write total for one result."""
    return sum(result.daily_allocation_writes())


def capture_improvement(
    candidate: SimulationResult,
    baseline: SimulationResult,
    skip_days: Sequence[int] = (),
) -> float:
    """Relative improvement in mean capture over a baseline (paper's
    "35%/50% more accesses than the best unsieved cache")."""
    base = mean_capture(baseline, skip_days)
    if base == 0:
        return float("inf")
    return mean_capture(candidate, skip_days) / base - 1.0
