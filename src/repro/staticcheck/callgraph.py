"""Whole-program symbol table, call graph, and boundary facts.

The per-file rules (SVL001-SVL004, SVL006) see one AST at a time; the
hazards PR 6-8 introduced — coordinator/worker fanout, sqlite sharding,
torn manifest writes — are only visible across files: a module-level
dict is harmless until a function three calls away from a
``pool.submit`` mutates it, and a helper writing ``path`` bare is fine
exactly when every caller hands it an ``atomic_write_path`` temp name.

This module builds the project-wide view those rules need:

* a **symbol table** mapping qualified names
  (``repro.sim.parallel._replay_shard``,
  ``repro.serve.store.ShardedByteStore.put``) to
  :class:`FunctionNode` records;
* a **call graph** — edges resolved through each module's
  :class:`~repro.staticcheck.astutil.ImportMap` (cross-module), plus
  module-local calls and ``self.method()`` dispatch within a class;
* **boundary facts** annotated onto every node:

  - ``pool_entry`` / ``runs_in_pool_worker`` — the function is handed
    to ``Executor.submit``/``.map`` or ``ProcessPoolExecutor(
    initializer=...)``, or is reachable from one that is.  Code on
    this side of the fork sees copies of module state, not the
    parent's.
  - ``thread_entry`` / ``reachable_from_thread`` — handed to
    ``threading.Thread(target=...)`` or reachable from such a target;
    code here shares memory but not sqlite connections or file
    positions.
  - ``touches_persisted_path`` — the body contains a write call to a
    persisted artifact (``open(..., "w")``, ``write_text``,
    ``numpy.savez``, ...), the raw material of rule SVL007.

Resolution is deliberately conservative: names that cannot be resolved
(call results, duck-typed attributes, inherited methods) produce no
edge, so boundary facts under-approximate reachability rather than
inventing it — a missing edge can hide a finding, never fabricate one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.staticcheck.context import ModuleContext

#: Executor methods whose first argument runs in a worker process.
_SUBMIT_METHODS = frozenset({"submit", "map"})

#: Executor constructors whose ``initializer=`` runs in every worker.
_POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
    }
)

#: Thread constructors whose ``target=`` runs in another thread.
_THREAD_CONSTRUCTORS = frozenset(
    {"threading.Thread", "threading.Timer", "Thread", "Timer"}
)

#: Canonical writer callables that persist bytes (see rule SVL007).
PERSISTED_WRITE_CALLS = frozenset(
    {"numpy.savez", "numpy.savez_compressed", "numpy.save"}
)

#: Attribute methods that persist bytes when called on a path object.
PERSISTED_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})


@dataclass
class CallSite:
    """One resolved call edge: the callee's qualified name + the node."""

    callee: str
    node: ast.Call


@dataclass
class FunctionNode:
    """One function/method in the project-wide symbol table."""

    qualname: str
    module: str
    ctx: ModuleContext
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    cls: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    # Boundary facts (filled in by ProjectGraph._propagate):
    pool_entry: bool = False
    thread_entry: bool = False
    runs_in_pool_worker: bool = False
    reachable_from_thread: bool = False
    touches_persisted_path: bool = False

    @property
    def name(self) -> str:
        """Unqualified function name."""
        return self.qualname.rsplit(".", 1)[-1]


class ProjectGraph:
    """Symbol table + call graph over a set of parsed modules.

    Built once per analysis run (lazily, on the first rule that asks)
    and shared by every call-graph-sensitive rule.
    """

    def __init__(self, modules: Iterable[ModuleContext]) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self._modules = list(modules)
        #: (owner FunctionNode qualname or "<module>", entry qualname)
        self._pool_entries: Set[str] = set()
        self._thread_entries: Set[str] = set()
        for ctx in self._modules:
            self._index_module(ctx)
        for ctx in self._modules:
            self._resolve_module(ctx)
        self._propagate()

    # -- construction ------------------------------------------------------

    def _index_module(self, ctx: ModuleContext) -> None:
        """Register every function/method under its qualified name."""

        def visit(stmts: List[ast.stmt], prefix: str, cls: Optional[str]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{stmt.name}"
                    self.functions[qualname] = FunctionNode(
                        qualname=qualname,
                        module=ctx.module,
                        ctx=ctx,
                        node=stmt,
                        cls=cls,
                    )
                    # Nested functions index under their parent, like
                    # runtime __qualname__ minus the "<locals>" noise.
                    visit(stmt.body, qualname, cls)
                elif isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, f"{prefix}.{stmt.name}", stmt.name)
                elif isinstance(stmt, (ast.If, ast.Try)):
                    # Conditionally-defined module-level functions
                    # (version shims) still belong in the table.
                    for body in _stmt_blocks(stmt):
                        visit(body, prefix, cls)

        visit(ctx.tree.body, ctx.module, None)

    def _resolve_module(self, ctx: ModuleContext) -> None:
        """Attach call edges and entry-point marks for one module."""
        for qualname, fn in self.functions.items():
            if fn.ctx is not ctx:
                continue
            body = getattr(fn.node, "body", [])
            for node in _walk_own_scope(body):
                if isinstance(node, ast.Call):
                    callee = self._resolve_call(ctx, fn, node)
                    if callee is not None:
                        fn.calls.append(CallSite(callee=callee, node=node))
                    self._note_entries(ctx, fn, node)
                if _is_persisted_write(ctx, node):
                    fn.touches_persisted_path = True
        # Module-level code (import-time executors, rare but legal).
        for node in _walk_own_scope(ctx.tree.body):
            if isinstance(node, ast.Call):
                self._note_entries(ctx, None, node)

    def _resolve_call(
        self, ctx: ModuleContext, fn: FunctionNode, call: ast.Call
    ) -> Optional[str]:
        """Qualified name of the callee, or None when unresolvable."""
        func = call.func
        if isinstance(func, ast.Name):
            # Module-local function first, then imported names.
            local = f"{ctx.module}.{func.id}"
            if local in self.functions:
                return local
            resolved = ctx.imports.resolve(func)
            if resolved in self.functions:
                return resolved
            return None
        if isinstance(func, ast.Attribute):
            # self.method() -> method on the enclosing class.
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and fn.cls is not None
            ):
                method = f"{ctx.module}.{fn.cls}.{func.attr}"
                if method in self.functions:
                    return method
            resolved = ctx.imports.resolve(func)
            if resolved in self.functions:
                return resolved
        return None

    def _note_entries(
        self, ctx: ModuleContext, fn: Optional[FunctionNode], call: ast.Call
    ) -> None:
        """Record pool/thread entry points referenced by this call."""
        func = call.func
        # pool.submit(worker, ...) / pool.map(worker, ...)
        if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS:
            if call.args:
                target = self._entry_target(ctx, fn, call.args[0])
                if target is not None:
                    self._pool_entries.add(target)
            return
        resolved = ctx.imports.resolve(func)
        name = resolved or (func.id if isinstance(func, ast.Name) else "")
        if name in _POOL_CONSTRUCTORS:
            for kw in call.keywords:
                if kw.arg == "initializer":
                    target = self._entry_target(ctx, fn, kw.value)
                    if target is not None:
                        self._pool_entries.add(target)
        elif name in _THREAD_CONSTRUCTORS:
            for kw in call.keywords:
                if kw.arg == "target":
                    target = self._entry_target(ctx, fn, kw.value)
                    if target is not None:
                        self._thread_entries.add(target)

    def _entry_target(
        self, ctx: ModuleContext, fn: Optional[FunctionNode], expr: ast.expr
    ) -> Optional[str]:
        """Qualified name of a callable handed across a boundary."""
        if isinstance(expr, ast.Name):
            local = f"{ctx.module}.{expr.id}"
            if local in self.functions:
                return local
            resolved = ctx.imports.resolve(expr)
            if resolved in self.functions:
                return resolved
            return None
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and fn is not None
                and fn.cls is not None
            ):
                method = f"{ctx.module}.{fn.cls}.{expr.attr}"
                if method in self.functions:
                    return method
            resolved = ctx.imports.resolve(expr)
            if resolved in self.functions:
                return resolved
        return None

    def _propagate(self) -> None:
        """BFS each boundary fact along call edges."""
        for entry in self._pool_entries:
            if entry in self.functions:
                self.functions[entry].pool_entry = True
        for entry in self._thread_entries:
            if entry in self.functions:
                self.functions[entry].thread_entry = True
        self._spread(self._pool_entries, "runs_in_pool_worker")
        self._spread(self._thread_entries, "reachable_from_thread")

    def _spread(self, roots: Set[str], attr: str) -> None:
        queue = [q for q in roots if q in self.functions]
        seen: Set[str] = set(queue)
        while queue:
            qualname = queue.pop()
            fn = self.functions[qualname]
            setattr(fn, attr, True)
            for site in fn.calls:
                if site.callee not in seen and site.callee in self.functions:
                    seen.add(site.callee)
                    queue.append(site.callee)

    # -- queries -----------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionNode]:
        return self.functions.get(qualname)

    def in_module(self, module: str) -> List[FunctionNode]:
        """Every function of one module, in source order."""
        return sorted(
            (f for f in self.functions.values() if f.module == module),
            key=lambda f: getattr(f.node, "lineno", 0),
        )

    def pool_worker_functions(self) -> List[FunctionNode]:
        """Functions that (transitively) run inside pool workers."""
        return sorted(
            (f for f in self.functions.values() if f.runs_in_pool_worker),
            key=lambda f: f.qualname,
        )

    def callers_of(self, qualname: str) -> List[Tuple[FunctionNode, ast.Call]]:
        """Every resolved call site targeting ``qualname``."""
        sites: List[Tuple[FunctionNode, ast.Call]] = []
        for fn in self.functions.values():
            for site in fn.calls:
                if site.callee == qualname:
                    sites.append((fn, site.node))
        sites.sort(
            key=lambda pair: (pair[0].qualname, pair[1].lineno, pair[1].col_offset)
        )
        return sites


def _stmt_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if block:
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []):
        blocks.append(handler.body)
    return blocks


def _walk_own_scope(stmts: List[ast.stmt]):
    """Walk statements without descending into nested function bodies.

    Unlike :func:`repro.staticcheck.astutil.walk_scope` this also skips
    class bodies' method bodies (they are indexed as their own nodes)
    while still visiting class-level statements.
    """
    stack: List[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_persisted_write(ctx: ModuleContext, node: ast.AST) -> bool:
    """True when ``node`` is a call that persists bytes to a path."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return _write_mode(node) is not None
    if isinstance(func, ast.Attribute):
        if func.attr in PERSISTED_WRITE_ATTRS:
            return True
        if func.attr == "open":
            # Path.open(mode=...): mode is the *first* argument.
            return _write_mode(node, mode_index=0) is not None
    resolved = ctx.imports.resolve(func)
    return resolved in PERSISTED_WRITE_CALLS


def _write_mode(call: ast.Call, mode_index: int = 1) -> Optional[str]:
    """The constant write mode of an ``open(...)`` call, or None.

    ``mode_index`` is the positional slot of the mode argument: 1 for
    builtin ``open(file, mode)``, 0 for ``Path.open(mode)``.  Only
    truncating modes count (``"w"``, ``"wb"``, ``"w+"``, ...):
    append-mode logs and ``"x"`` marker touches are not replace-style
    publications, so atomic_write is not the right tool for them.
    """
    mode: Optional[ast.expr] = None
    if len(call.args) > mode_index:
        mode = call.args[mode_index]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value if "w" in mode.value else None
    return None
