"""Committed baseline of grandfathered findings.

The baseline maps a line-number-independent key
(``module::code::symbol``) to an occurrence count.  At check time each
reported finding consumes one occurrence of its key; leftover findings
are reported, leftover baseline entries are flagged as stale so the
file shrinks as debt is paid down.  The file is JSON with sorted keys,
so regenerating it on an unchanged tree is byte-stable — CI diffs it
against the committed copy.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.staticcheck.findings import Finding

BASELINE_FORMAT_VERSION = 1


class Baseline:
    """Occurrence-counted set of accepted findings."""

    def __init__(self, entries: Optional[Dict[str, int]] = None) -> None:
        self.entries: Dict[str, int] = dict(entries or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"{path}: not a sievelint baseline file")
        version = data.get("version")
        if version != BASELINE_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_FORMAT_VERSION})"
            )
        entries = data["entries"]
        if not isinstance(entries, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in entries.items()
        ):
            raise ValueError(f"{path}: malformed baseline entries")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts = Counter(f.baseline_key() for f in findings)
        return cls(dict(counts))

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_FORMAT_VERSION,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def apply(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[str]]:
        """Split findings into (new, stale-baseline-keys).

        Each finding consumes one count of its key; findings beyond the
        recorded count — or with no entry — come back as *new*.  Keys
        with counts left over after all findings are matched are
        *stale* and should be pruned by regenerating the baseline.
        """
        remaining = Counter(self.entries)
        new: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                new.append(finding)
        stale = sorted(key for key, count in remaining.items() if count > 0)
        return new, stale
