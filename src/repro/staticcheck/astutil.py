"""Shared AST plumbing: module naming, import resolution, parent maps.

Every rule needs the same three facilities: the dotted module name of
the file under analysis (rules scope themselves to package prefixes),
canonical resolution of call targets through import aliases
(``np.random.rand`` -> ``numpy.random.rand``), and parent links (the
stdlib AST has none).  They live here so rules stay small.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional


def module_name_for(path: Path) -> str:
    """Dotted module name of a source file, derived from package layout.

    Climbs parent directories while they contain ``__init__.py``, so
    ``src/repro/sim/parallel.py`` resolves to ``repro.sim.parallel``
    regardless of the scan root.  A file outside any package resolves
    to its bare stem.
    """
    resolved = path.resolve()
    parts = [] if resolved.name == "__init__.py" else [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


def module_matches(module: str, prefixes: Iterable[str]) -> bool:
    """True when ``module`` is one of ``prefixes`` or inside one."""
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


class ImportMap:
    """Canonicalizes names through a module's import statements.

    ``import numpy as np`` maps the local root ``np`` to ``numpy``;
    ``from datetime import datetime`` maps ``datetime`` to
    ``datetime.datetime``.  :meth:`resolve` then renders attribute
    chains rooted at an imported name as canonical dotted paths, which
    is what rule ban-lists are written against.
    """

    def __init__(self, tree: ast.Module, module: str = "") -> None:
        self.aliases: Dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: anchor at the current package.
                    hops = package.split(".") if package else []
                    hops = hops[: len(hops) - (node.level - 1)] if node.level > 1 else hops
                    anchor = ".".join(hops)
                    base = f"{anchor}.{base}" if base and anchor else (anchor or base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None.

        Returns None when the chain is not rooted at an imported name
        (locals, ``self`` attributes, call results) — rules that care
        about builtins or module-local functions match those by name
        themselves.
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def walk_scope(stmts: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk ``stmts`` without descending into nested function scopes.

    Nested ``FunctionDef``/``Lambda`` nodes are still *yielded* (so
    callers can note their existence) but their bodies are not entered:
    scope-local analyses enumerate inner functions separately and walk
    each with its own state.  Class bodies are entered — they execute
    in the enclosing scope.
    """
    stack: List[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    """Child -> parent links for every node under ``tree``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def enclosing_function(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Optional[ast.AST]:
    """Nearest enclosing function/lambda, or None at module/class level."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return current
        current = parents.get(current)
    return None


def is_module_level(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """True when ``node`` executes at import time (module or class body)."""
    return enclosing_function(node, parents) is None


def unparse_short(node: ast.AST, limit: int = 60) -> str:
    """Source rendering of a node, truncated for symbols/messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all valid ASTs
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."
