"""Text and JSON renderings of an analysis :class:`Report`."""

from __future__ import annotations

import json
from typing import IO, Dict, List

from repro.staticcheck.analyzer import Report
from repro.staticcheck.findings import Finding

#: Version of the JSON report envelope (not the baseline format).
#: v2: findings gained ``column``/``end_line`` and the envelope pins
#: deterministic finding order (file, line, column, code).  The report
#: format itself is a serialized schema, registered in
#: ``schema_registry`` so SVL005 guards the linter's own output.
REPORT_FORMAT_VERSION = 2


def render_text(report: Report, stale_hint: str = "") -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = [f.render() for f in report.findings]
    for key in report.stale_baseline:
        lines.append(
            f"stale baseline entry {key!r}: no matching finding remains"
            + (f" ({stale_hint})" if stale_hint else "")
        )
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (
        f"{len(report.findings)} {noun} "
        f"({report.errors} errors, {report.warnings} warnings) "
        f"in {report.files_scanned} files"
    )
    if report.suppressed:
        summary += f"; {report.suppressed} suppressed inline"
    if report.stale_baseline:
        summary += f"; {len(report.stale_baseline)} stale baseline entries"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> Dict[str, object]:
    """Machine-readable report envelope (stable schema for CI tooling).

    Findings are re-sorted here rather than trusting the caller, so
    the JSON order is deterministic no matter how the report was
    assembled (CI tooling diffs these files).
    """
    return {
        "version": REPORT_FORMAT_VERSION,
        "findings": [
            f.to_dict() for f in sorted(report.findings, key=Finding.sort_key)
        ],
        "stale_baseline": list(report.stale_baseline),
        "summary": {
            "files_scanned": report.files_scanned,
            "findings": len(report.findings),
            "errors": report.errors,
            "warnings": report.warnings,
            "suppressed": report.suppressed,
            "stale_baseline": len(report.stale_baseline),
        },
    }


def write_json(report: Report, stream: IO[str]) -> None:
    json.dump(render_json(report), stream, indent=2, sort_keys=True)
    stream.write("\n")
