"""Per-file analysis context shared by every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.staticcheck.astutil import ImportMap, module_name_for
from repro.staticcheck.suppressions import Suppressions, parse_suppressions


@dataclass
class ModuleContext:
    """One parsed source file: path, dotted module name, AST, pragmas.

    Built once per file by the analyzer and handed to every rule, so
    parsing, import resolution, and suppression extraction happen once
    regardless of how many rules run.
    """

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    imports: ImportMap

    @classmethod
    def from_source(
        cls, source: str, path: Path, module: str = ""
    ) -> "ModuleContext":
        """Parse ``source`` into a context; raises SyntaxError as-is."""
        name = module or module_name_for(path)
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            module=name,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
            imports=ImportMap(tree, module=name),
        )
