"""Per-file and project-wide analysis contexts shared by every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.staticcheck.astutil import ImportMap, module_name_for
from repro.staticcheck.suppressions import Suppressions, parse_suppressions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.staticcheck.callgraph import ProjectGraph


@dataclass
class ModuleContext:
    """One parsed source file: path, dotted module name, AST, pragmas.

    Built once per file by the analyzer and handed to every rule, so
    parsing, import resolution, and suppression extraction happen once
    regardless of how many rules run.
    """

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    imports: ImportMap

    @classmethod
    def from_source(
        cls, source: str, path: Path, module: str = ""
    ) -> "ModuleContext":
        """Parse ``source`` into a context; raises SyntaxError as-is."""
        name = module or module_name_for(path)
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            module=name,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
            imports=ImportMap(tree, module=name),
        )


class Project:
    """Every parsed module of one analysis run, plus the call graph.

    Handed to :meth:`~repro.staticcheck.registry.Rule.check_project` so
    cross-file rules can see the whole scan at once.  The
    :class:`~repro.staticcheck.callgraph.ProjectGraph` — symbol table,
    call edges, boundary facts — is built lazily on first access and
    shared by every rule that asks, so per-file-only runs never pay for
    it.
    """

    def __init__(self, modules: List[ModuleContext]) -> None:
        self.modules = list(modules)
        self._graph: Optional["ProjectGraph"] = None
        self._by_module: Optional[Dict[str, ModuleContext]] = None

    @property
    def graph(self) -> "ProjectGraph":
        """The whole-program call graph (built on first use)."""
        if self._graph is None:
            from repro.staticcheck.callgraph import ProjectGraph

            self._graph = ProjectGraph(self.modules)
        return self._graph

    @property
    def by_module(self) -> Dict[str, ModuleContext]:
        """Dotted module name -> context (last one wins on collision)."""
        if self._by_module is None:
            self._by_module = {ctx.module: ctx for ctx in self.modules}
        return self._by_module

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
