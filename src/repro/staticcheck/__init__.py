"""``sievelint`` — AST-based invariant checker for this repository.

The paper's headline claims rest on exact counting: sieving eliminates
>99% of allocation-writes only if every access, epoch boundary, and
miss-count is reproduced bit-identically.  Several subsystems depend on
invariants that ordinary tests cannot economically cover — no wall
clock in simulation paths, no unseeded randomness, picklable worker
payloads, zero-overhead-when-off instrumentation, versioned serialized
schemas, and deterministic iteration order.  This package turns those
prose contracts into machine-checked rules (codes ``SVL001``-``SVL006``)
enforced in CI via ``python -m repro check`` (alias ``sievelint``).

Dependency-free by design: only the standard library's ``ast`` and
``tokenize`` are used, so the checker runs anywhere the code does.
"""

from __future__ import annotations

from repro.staticcheck.analyzer import Report, analyze_paths, check_source
from repro.staticcheck.baseline import Baseline
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, all_rules, get_rule

__all__ = [
    "Baseline",
    "Finding",
    "Report",
    "Rule",
    "RuleMeta",
    "Severity",
    "all_rules",
    "analyze_paths",
    "check_source",
    "get_rule",
]
