"""Pluggable rule registry.

Rules are classes decorated with :func:`register`; each carries a
:class:`RuleMeta` describing its code, default severity, and the
contract it enforces.  The analyzer instantiates every registered rule
fresh per run, so rules may keep per-run state (SVL005 accumulates
cross-module facts in :meth:`Rule.check_project`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Type

from repro.staticcheck.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.staticcheck.context import ModuleContext


@dataclass(frozen=True)
class RuleMeta:
    """Static description of a rule: its code, severity, and rationale."""

    code: str
    name: str
    severity: str
    summary: str
    rationale: str


class Rule:
    """Base class for analyzer rules.

    Subclasses override :meth:`check_module` (called once per parsed
    file) and/or :meth:`check_project` (called once after every file,
    for cross-file rules such as the schema registry check).  Both
    return findings; suppression and baseline filtering happen in the
    analyzer, not here.
    """

    meta: RuleMeta

    def check_module(self, ctx: "ModuleContext") -> List[Finding]:
        return []

    def check_project(self, modules: List["ModuleContext"]) -> List[Finding]:
        return []


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_cls.meta.code
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    # Importing the rules package triggers registration exactly once.
    import repro.staticcheck.rules  # noqa: F401

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def all_codes() -> List[str]:
    """Sorted codes of every registered rule."""
    import repro.staticcheck.rules  # noqa: F401

    return sorted(_REGISTRY)


def get_rule(code: str) -> Rule:
    """Instantiate the rule registered under ``code``."""
    import repro.staticcheck.rules  # noqa: F401

    try:
        return _REGISTRY[code]()
    except KeyError:
        raise KeyError(f"no rule registered for code {code!r}") from None
