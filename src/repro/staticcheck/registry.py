"""Pluggable rule registry.

Rules are classes decorated with :func:`register`; each carries a
:class:`RuleMeta` describing its code, default severity, and the
contract it enforces.  The analyzer instantiates every registered rule
fresh per run, so rules may keep per-run state (SVL005 accumulates
cross-module facts in :meth:`Rule.check_project`).

Since the interprocedural re-host, :meth:`Rule.check_project` receives
a :class:`~repro.staticcheck.context.Project` — every parsed module
plus a lazily-built whole-program call graph — instead of a bare
module list, so rules can be flow- and call-graph-sensitive (SVL007,
SVL008) as well as cross-file (SVL005, SVL009).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Type

from repro.staticcheck.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.staticcheck.context import ModuleContext, Project


@dataclass(frozen=True)
class RuleMeta:
    """Static description of a rule: its code, severity, and rationale.

    ``example`` is a minimal self-contained snippet violating the rule
    (printed by ``sievelint --explain CODE``); ``fixture_module`` is
    the dotted module name under which the rule's fixture files in
    ``tests/staticcheck/fixtures/`` trigger it (most rules scope
    themselves to package prefixes, so the coverage meta-test needs to
    know which module identity makes the rule fire).
    """

    code: str
    name: str
    severity: str
    summary: str
    rationale: str
    example: str = ""
    fixture_module: str = "fixture"


class Rule:
    """Base class for analyzer rules.

    Subclasses override :meth:`check_module` (called once per parsed
    file) and/or :meth:`check_project` (called once after every file
    with the whole :class:`~repro.staticcheck.context.Project`, for
    cross-file and call-graph-sensitive rules).  Both return findings;
    suppression and baseline filtering happen in the analyzer, not
    here.
    """

    meta: RuleMeta

    def check_module(self, ctx: "ModuleContext") -> List[Finding]:
        return []

    def check_project(self, project: "Project") -> List[Finding]:
        return []


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_cls.meta.code
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    # Importing the rules package triggers registration exactly once.
    import repro.staticcheck.rules  # noqa: F401

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def all_codes() -> List[str]:
    """Sorted codes of every registered rule."""
    import repro.staticcheck.rules  # noqa: F401

    return sorted(_REGISTRY)


def get_rule(code: str) -> Rule:
    """Instantiate the rule registered under ``code``."""
    import repro.staticcheck.rules  # noqa: F401

    try:
        return _REGISTRY[code]()
    except KeyError:
        raise KeyError(f"no rule registered for code {code!r}") from None
