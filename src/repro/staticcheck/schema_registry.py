"""Checked field-registry for serialized schemas (backs rule SVL005).

Every on-disk format in the repo — result JSON, run manifest,
checkpoint payloads, FaultPlan JSON — has a version constant whose
loaders refuse unknown values.  The contract is: *change the field set,
bump the version*.  This registry records, per schema, where its fields
are defined (a dataclass or a dict-literal-building function), the
expected field names, and the expected value of the guarding version
constant.  Rule SVL005 re-extracts the actual fields from the AST and
compares: fields drifted while the version (and this registry) stayed
put means someone forgot the bump.

When a schema legitimately evolves, the fix is two edits: bump the
version constant in its module, and update the matching
:data:`SPECS` entry here (fields and expected version).  The rule
flags either edit made without the other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple


@dataclass(frozen=True)
class SchemaSpec:
    """One serialized schema: where its fields live, what they should be.

    ``kind`` selects the extraction strategy:

    * ``"dataclass"`` — ``symbol`` names a ClassDef; fields are the
      annotated assignments in its body.
    * ``"dict"`` — ``symbol`` names a function building the payload.
      With ``track_var`` set, fields are the keys of the dict literal
      assigned to that variable plus any ``var["key"] = ...`` stores on
      it; without, fields are the keys of the outermost dict literal(s)
      in the function body.
    """

    name: str
    fields_module: str
    kind: str  # "dataclass" | "dict"
    symbol: str
    fields: FrozenSet[str]
    version_module: str
    versions: Tuple[Tuple[str, int], ...]
    track_var: str = ""


def _spec(
    name: str,
    fields_module: str,
    kind: str,
    symbol: str,
    fields: Tuple[str, ...],
    version_module: str,
    versions: Tuple[Tuple[str, int], ...],
    track_var: str = "",
) -> SchemaSpec:
    return SchemaSpec(
        name=name,
        fields_module=fields_module,
        kind=kind,
        symbol=symbol,
        fields=frozenset(fields),
        version_module=version_module,
        versions=versions,
        track_var=track_var,
    )


#: Every serialized schema the repo commits to.  Ordered by name for
#: deterministic reporting.
SPECS: Tuple[SchemaSpec, ...] = (
    _spec(
        "checkpoint-config",
        "repro.sim.engine",
        "dict",
        "_checkpoint_config",
        (
            "capacity_blocks",
            "days",
            "replacement",
            "replacement_seed",
            "track_minutes",
            "batch_moves_staggered",
            "write_mode",
            "epoch_seconds",
            "total_epochs",
            "checkpoint_every",
        ),
        "repro.sim.serialize",
        (("CHECKPOINT_SCHEMA_VERSION", 2),),
    ),
    _spec(
        "checkpoint-fast",
        "repro.sim.engine",
        "dict",
        "_fast_checkpointer",
        (
            "engine",
            "cursor",
            "current_epoch",
            "policy_name",
            "elapsed",
            "config",
            "trace_fingerprint",
            "context",
            "policy",
            "cache",
            "stats",
        ),
        "repro.sim.serialize",
        (("CHECKPOINT_SCHEMA_VERSION", 2),),
    ),
    _spec(
        "checkpoint-object",
        "repro.sim.engine",
        "dict",
        "_object_checkpointer",
        (
            "engine",
            "cursor",
            "current_epoch",
            "policy_name",
            "elapsed",
            "config",
            "trace_fingerprint",
            "context",
            "appliance",
        ),
        "repro.sim.serialize",
        (("CHECKPOINT_SCHEMA_VERSION", 2),),
    ),
    _spec(
        "day-stats",
        "repro.cache.stats",
        "dataclass",
        "DayStats",
        (
            "accesses",
            "read_hits",
            "write_hits",
            "read_misses",
            "write_misses",
            "allocation_writes",
            "backing_writes",
            "writebacks",
            "read_errors",
            "write_errors",
            "bypass_accesses",
        ),
        "repro.sim.serialize",
        (("SCHEMA_VERSION", 1),),
    ),
    _spec(
        "fault-plan",
        "repro.faults.plan",
        "dataclass",
        "FaultPlan",
        ("errors", "latency", "outages", "wearout_bytes", "seed"),
        "repro.faults.plan",
        (("PLAN_SCHEMA_VERSION", 1),),
    ),
    _spec(
        "result-json",
        "repro.sim.serialize",
        "dict",
        "result_to_dict",
        ("schema_version", "policy_name", "wall_seconds", "engine", "stats"),
        "repro.sim.serialize",
        (("SCHEMA_VERSION", 1),),
    ),
    _spec(
        "run-manifest",
        "repro.sim.parallel",
        "dict",
        "_build_manifest",
        (
            "schema",
            "requested",
            "names",
            "jobs",
            "track_minutes",
            "fast_path",
            "task_timeout",
            "pool_broken",
            "wall_seconds",
            "tasks",
            "metrics",
        ),
        "repro.sim.parallel",
        (
            ("MANIFEST_SCHEMA_VERSION", 2),
            ("MANIFEST_SCHEMA_VERSION_METRICS", 3),
        ),
        track_var="manifest",
    ),
    _spec(
        "segment-entry",
        "repro.traces.segments",
        "dataclass",
        "SegmentInfo",
        ("file", "rows", "first_issue", "last_issue", "bytes"),
        "repro.traces.segments",
        (("SEGMENT_MANIFEST_VERSION", 1),),
    ),
    _spec(
        "segment-manifest",
        "repro.traces.segments",
        "dict",
        "_manifest_payload",
        (
            "manifest_version",
            "npz_format_version",
            "description",
            "config_fingerprint",
            "total_rows",
            "segments",
        ),
        "repro.traces.segments",
        (("SEGMENT_MANIFEST_VERSION", 1),),
    ),
    _spec(
        "serve-manifest",
        "repro.serve.bench",
        "dict",
        "manifest",
        ("version", "kind", "gate", "clients"),
        "repro.serve.bench",
        (("MANIFEST_VERSION", 1),),
    ),
    _spec(
        "serve-store-meta",
        "repro.serve.store",
        "dict",
        "_adopt_layout",
        ("layout_version", "shards"),
        "repro.serve.store",
        (("STORE_LAYOUT_VERSION", 1),),
    ),
    _spec(
        "shard-manifest",
        "repro.sim.parallel",
        "dict",
        "_build_shard_manifest",
        (
            "schema",
            "kind",
            "policy",
            "shards",
            "names",
            "jobs",
            "track_minutes",
            "fast_path",
            "chunk_rows",
            "task_timeout",
            "pool_broken",
            "wall_seconds",
            "tasks",
            "metrics",
        ),
        "repro.sim.parallel",
        (("SHARD_MANIFEST_VERSION", 1),),
        track_var="manifest",
    ),
    _spec(
        "staticcheck-finding",
        "repro.staticcheck.findings",
        "dict",
        "to_dict",
        (
            "code",
            "severity",
            "path",
            "line",
            "col",
            "column",
            "end_line",
            "module",
            "message",
            "symbol",
        ),
        "repro.staticcheck.reporters",
        (("REPORT_FORMAT_VERSION", 2),),
    ),
    _spec(
        "staticcheck-report",
        "repro.staticcheck.reporters",
        "dict",
        "render_json",
        ("version", "findings", "stale_baseline", "summary"),
        "repro.staticcheck.reporters",
        (("REPORT_FORMAT_VERSION", 2),),
    ),
    _spec(
        "stats-json",
        "repro.sim.serialize",
        "dict",
        "stats_to_dict",
        ("days", "per_day", "per_minute", "degraded_seconds", "bypass_seconds"),
        "repro.sim.serialize",
        (("SCHEMA_VERSION", 1),),
        track_var="payload",
    ),
    _spec(
        "task-record",
        "repro.sim.parallel",
        "dataclass",
        "TaskRecord",
        (
            "policy",
            "outcome",
            "engine",
            "wall_seconds",
            "retries",
            "worker_pid",
            "executor",
            "error",
            "fault_plan",
            "checkpoint",
            "metrics",
        ),
        "repro.sim.parallel",
        (
            ("MANIFEST_SCHEMA_VERSION", 2),
            ("MANIFEST_SCHEMA_VERSION_METRICS", 3),
        ),
    ),
)


def extract_dataclass_fields(
    tree: ast.Module, symbol: str
) -> Optional[Tuple[int, FrozenSet[str]]]:
    """(line, field names) of the class ``symbol``, or None if absent."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == symbol:
            fields = {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
            return node.lineno, frozenset(fields)
    return None


def extract_dict_fields(
    tree: ast.Module, symbol: str, track_var: str = ""
) -> Optional[Tuple[int, FrozenSet[str]]]:
    """(line, key names) built by the function ``symbol``, or None.

    Only constant string keys count; computed keys (``str(minute)``)
    are intentionally outside the schema contract.
    """
    func = None
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == symbol
        ):
            func = node
            break
    if func is None:
        return None
    fields = set()
    if track_var:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets_var = any(
                    isinstance(t, ast.Name) and t.id == track_var
                    for t in node.targets
                )
                if targets_var and isinstance(node.value, ast.Dict):
                    fields.update(_const_keys(node.value))
                for target in node.targets:
                    key = _subscript_store_key(target, track_var)
                    if key is not None:
                        fields.add(key)
    else:
        dicts = [n for n in ast.walk(func) if isinstance(n, ast.Dict)]
        nested = set()
        for outer in dicts:
            for inner in ast.walk(outer):
                if isinstance(inner, ast.Dict) and inner is not outer:
                    nested.add(id(inner))
        for node in dicts:
            if id(node) not in nested:
                fields.update(_const_keys(node))
    return func.lineno, frozenset(fields)


def extract_versions(tree: ast.Module) -> Dict[str, object]:
    """Module-level ``NAME = <constant>`` assignments."""
    versions: Dict[str, object] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    versions[target.id] = stmt.value.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and isinstance(stmt.value, ast.Constant)
        ):
            versions[stmt.target.id] = stmt.value.value
    return versions


def _const_keys(node: ast.Dict) -> List[str]:
    return [
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    ]


def _subscript_store_key(target: ast.expr, track_var: str) -> Optional[str]:
    if not isinstance(target, ast.Subscript):
        return None
    if not (
        isinstance(target.value, ast.Name) and target.value.id == track_var
    ):
        return None
    index = target.slice
    if isinstance(index, ast.Constant) and isinstance(index.value, str):
        return index.value
    return None
