"""Declared metric-name registry (backs rule SVL009).

Every ``counter()`` / ``gauge()`` / ``histogram()`` registration in the
tree must match one of these specs: same kind, same label-name set.
The exporter renders whatever the registry holds, CI assertions grep
for these exact names, and the parallel runner merges snapshots by
name+labels — so a call site drifting (renamed metric, added label,
counter re-registered as a gauge) silently breaks dashboards and CI
greps the way an unbumped schema breaks loaders.  SVL009 re-extracts
every registration site from the AST and compares against this file,
exactly the way SVL005 treats ``schema_registry``.

When a metric legitimately changes, the fix is two edits: change the
call site(s), and update the matching :data:`METRICS` entry here.
``module`` records the metric's owning module so the rule can flag a
stale registry entry (spec with no surviving call site) only when that
module is actually part of the scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: name, kind, label names, owning module."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: Tuple[str, ...]
    module: str


def _m(name: str, kind: str, labels: Tuple[str, ...], module: str) -> MetricSpec:
    return MetricSpec(name=name, kind=kind, labels=labels, module=module)


#: Every metric the repo emits, ordered by name.
METRICS: Tuple[MetricSpec, ...] = (
    _m(
        "appliance_health_transitions_total",
        "counter",
        ("policy", "from_state", "to_state"),
        "repro.obs.instrument",
    ),
    _m("imct_alias_collisions_total", "counter", ("policy",), "repro.obs.instrument"),
    _m("mct_entries", "gauge", ("policy",), "repro.obs.instrument"),
    _m("mct_evictions_total", "counter", ("policy",), "repro.obs.instrument"),
    _m("mct_inserts_total", "counter", ("policy",), "repro.obs.instrument"),
    _m("mct_peak_entries", "gauge", ("policy",), "repro.obs.instrument"),
    _m("segment_opens_total", "counter", (), "repro.traces.segments"),
    _m("segment_rows_read_total", "counter", (), "repro.traces.segments"),
    _m(
        "serve_allocation_writes_total",
        "counter",
        (),
        "repro.serve.appliance",
    ),
    _m(
        "serve_health_transitions_total",
        "counter",
        ("from_state", "to_state"),
        "repro.serve.appliance",
    ),
    _m("serve_ops_total", "counter", ("op", "outcome"), "repro.serve.appliance"),
    _m("sieve_admissions_total", "counter", ("policy",), "repro.obs.instrument"),
    _m("sieve_promotions_total", "counter", ("policy",), "repro.obs.instrument"),
    _m(
        "sieve_rejections_total",
        "counter",
        ("policy", "tier"),
        "repro.obs.instrument",
    ),
    _m("sieve_tracked_blocks", "gauge", ("policy",), "repro.obs.instrument"),
    _m(
        "sim_blocks_per_second",
        "gauge",
        ("policy", "engine"),
        "repro.obs.instrument",
    ),
    _m("sim_blocks_total", "counter", ("policy", "engine"), "repro.obs.instrument"),
    _m(
        "sim_epoch_wall_seconds",
        "histogram",
        ("policy", "engine"),
        "repro.obs.instrument",
    ),
    _m(
        "sim_requests_total",
        "counter",
        ("policy", "engine"),
        "repro.obs.instrument",
    ),
    _m(
        "sim_wall_seconds_total",
        "counter",
        ("policy", "engine"),
        "repro.obs.instrument",
    ),
    _m(
        "suite_retries_total",
        "counter",
        ("policy",),
        "repro.sim.parallel",
    ),
    _m(
        "suite_task_wait_seconds",
        "histogram",
        ("executor",),
        "repro.sim.parallel",
    ),
    _m(
        "suite_tasks_total",
        "counter",
        ("outcome", "executor"),
        "repro.sim.parallel",
    ),
    _m(
        "trace_cache_requests_total",
        "counter",
        ("outcome",),
        "repro.traces.store",
    ),
)


def specs_by_name() -> Dict[str, MetricSpec]:
    """Name -> spec lookup (names are unique by construction)."""
    return {spec.name: spec for spec in METRICS}
