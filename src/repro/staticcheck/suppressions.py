"""Inline suppression comments.

``# sievelint: disable=SVL006 -- reason`` silences the named codes on
that physical line; ``disable-file=`` silences them for the whole file.
Comments are read with :mod:`tokenize` rather than regex-over-source so
string literals that merely *look* like suppressions are never honored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_PRAGMA = re.compile(
    r"#\s*sievelint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+)"
)


@dataclass
class Suppressions:
    """Per-line and per-file suppressed rule codes for one source file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        if code in self.file_wide or "ALL" in self.file_wide:
            return True
        codes = self.by_line.get(line, ())
        return code in codes or "ALL" in codes


def parse_suppressions(source: str) -> Suppressions:
    """Extract sievelint pragmas from every comment token in ``source``."""
    supp = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            codes = _parse_codes(match.group("codes"))
            if match.group("kind") == "disable-file":
                supp.file_wide.update(codes)
            else:
                supp.by_line.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenizeError:
        # The analyzer reports the parse error separately (SVL000);
        # suppression parsing just degrades to "none".
        pass
    return supp


def _parse_codes(raw: str) -> FrozenSet[str]:
    # Trailing prose after the code list ("SVL006 -- reason") arrives
    # here as extra whitespace-separated words; keep only code-shaped
    # leading tokens so the justification text is ignored.
    codes = []
    for chunk in raw.split(","):
        word = chunk.split()[0].strip().upper() if chunk.split() else ""
        if word:
            codes.append(word)
    return frozenset(codes)
