"""``python -m repro.staticcheck`` entry point."""

from __future__ import annotations

import sys

from repro.staticcheck.cli import main

if __name__ == "__main__":
    sys.exit(main())
