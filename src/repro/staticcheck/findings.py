"""The unit of analyzer output: one :class:`Finding` per violation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union


class Severity:
    """Finding severities, ordered from least to most severe."""

    WARNING = "warning"
    ERROR = "error"

    ALL: Tuple[str, ...] = (WARNING, ERROR)

    @classmethod
    def rank(cls, severity: str) -> int:
        """Numeric rank for sorting (higher is more severe)."""
        return cls.ALL.index(severity)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``symbol`` is a short, line-number-independent identity for the
    violation (typically the offending call or variable rendered as
    source text); the baseline keys on it so grandfathered findings
    survive unrelated edits that shift line numbers.
    """

    code: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    module: str
    symbol: str = ""
    #: Last physical line of the offending node (0 = unknown; older
    #: rules and parse errors have no span).
    end_line: int = 0

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Deterministic report ordering: path, position, code."""
        return (self.path, self.line, self.col, self.code)

    def baseline_key(self) -> str:
        """Stable identity used by the committed findings baseline.

        Deliberately line-number-free: ``symbol`` carries the stable
        anchor.  Per-file rules use the offending expression's source
        text; call-graph rules use qualified function names
        (``repro.sim.parallel._replay_shard``), which survive edits
        anywhere else in the project.
        """
        return f"{self.module}::{self.code}::{self.symbol}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """Plain-JSON form for the JSON reporter.

        ``column`` duplicates ``col`` under the name most editors and
        SARIF-ish consumers expect; ``col`` stays for compatibility
        with format-version-1 consumers.
        """
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "column": self.col,
            "end_line": self.end_line or self.line,
            "module": self.module,
            "message": self.message,
            "symbol": self.symbol,
        }

    def render(self) -> str:
        """One-line human-readable form for the text reporter."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )
