"""Analysis driver: file discovery, rule execution, suppression.

:func:`analyze_paths` is the programmatic entry point (the CLI is a
thin shell around it); :func:`check_source` analyzes a single source
string, which is what the fixture tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.staticcheck.astutil import module_name_for
from repro.staticcheck.context import ModuleContext, Project
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, all_codes, all_rules

#: Pseudo-code for files the analyzer itself cannot parse.  Not a
#: registered rule: it has no check, only a reporting channel.
PARSE_ERROR_CODE = "SVL000"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    #: Baseline keys with no matching finding left in the tree.
    stale_baseline: List[str] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(
            1 for f in self.findings if f.severity == Severity.ERROR
        )

    @property
    def warnings(self) -> int:
        return sum(
            1 for f in self.findings if f.severity == Severity.WARNING
        )


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    files = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
    return sorted(files)


def validate_codes(codes: Iterable[str]) -> List[str]:
    """Uppercase and verify rule codes; raises ValueError on unknowns."""
    known = set(all_codes()) | {PARSE_ERROR_CODE}
    result = []
    for code in codes:
        upper = code.strip().upper()
        if upper not in known:
            raise ValueError(
                f"unknown rule code {code!r} "
                f"(known: {', '.join(sorted(known))})"
            )
        result.append(upper)
    return result


def analyze_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Report:
    """Run every (selected) rule over every file under ``paths``."""
    rules = _filter_rules(all_rules(), select, ignore)
    report = Report()
    contexts: List[ModuleContext] = []
    suppressions_by_path: Dict[str, ModuleContext] = {}
    raw: List[Finding] = []

    for file_path in iter_python_files([Path(p) for p in paths]):
        report.files_scanned += 1
        try:
            source = file_path.read_text()
            ctx = ModuleContext.from_source(source, file_path)
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            raw.append(_parse_error(file_path, exc))
            continue
        contexts.append(ctx)
        suppressions_by_path[str(file_path)] = ctx
        for rule in rules:
            raw.extend(rule.check_module(ctx))

    project = Project(contexts)
    for rule in rules:
        raw.extend(rule.check_project(project))

    for finding in sorted(raw, key=Finding.sort_key):
        ctx = suppressions_by_path.get(finding.path)
        if ctx is not None and ctx.suppressions.is_suppressed(
            finding.code, finding.line
        ):
            report.suppressed += 1
        else:
            report.findings.append(finding)
    return report


def check_source(
    source: str,
    path: str = "<fixture>",
    module: str = "fixture",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze one in-memory source string (fixture-test entry point)."""
    ctx = ModuleContext.from_source(source, Path(path), module=module)
    rules = _filter_rules(all_rules(), select, None)
    project = Project([ctx])
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check_module(ctx))
        raw.extend(rule.check_project(project))
    return sorted(
        (
            f
            for f in raw
            if not ctx.suppressions.is_suppressed(f.code, f.line)
        ),
        key=Finding.sort_key,
    )


def _filter_rules(
    rules: List[Rule],
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> List[Rule]:
    if select:
        wanted = set(validate_codes(select))
        rules = [r for r in rules if r.meta.code in wanted]
    if ignore:
        unwanted = set(validate_codes(ignore))
        rules = [r for r in rules if r.meta.code not in unwanted]
    return rules


def _parse_error(path: Path, exc: Exception) -> Finding:
    line = getattr(exc, "lineno", None) or 1
    col = getattr(exc, "offset", None) or 0
    return Finding(
        code=PARSE_ERROR_CODE,
        severity=Severity.ERROR,
        path=str(path),
        line=line,
        col=col,
        message=f"file could not be parsed: {exc}",
        module=module_name_for(path),
        symbol="parse-error",
    )
