"""``sievelint`` command line (also ``python -m repro check``).

Exit codes are part of the contract CI gates on:

* ``0`` — no new findings (clean tree, or everything baselined)
* ``1`` — findings (or stale baseline entries, which mean the baseline
  no longer reflects the tree and must be regenerated)
* ``2`` — usage error (unknown rule code, unreadable baseline, bad path)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.staticcheck import analyzer, reporters
from repro.staticcheck.baseline import Baseline
from repro.staticcheck.registry import all_rules, get_rule

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Picked up automatically when present in the working directory.
DEFAULT_BASELINE = "staticcheck-baseline.json"


class UsageError(Exception):
    """Invalid invocation; maps to exit code 2."""


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach sievelint arguments to ``parser`` (shared with ``repro check``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every registered rule and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help=(
            "print one rule's rationale, a violating example, and the "
            "suppression syntax, then exit"
        ),
    )


def run(args: argparse.Namespace) -> int:
    """Execute a configured invocation; returns the process exit code."""
    try:
        return _run(args)
    except UsageError as exc:
        print(f"sievelint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _run(args: argparse.Namespace) -> int:
    if args.explain is not None:
        print(explain_rule(args.explain))
        return EXIT_CLEAN
    if args.list_rules:
        for rule in all_rules():
            meta = rule.meta
            print(f"{meta.code} {meta.name} [{meta.severity}]")
            print(f"    {meta.summary}")
            print(f"    {meta.rationale}")
        return EXIT_CLEAN

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            raise UsageError(f"path does not exist: {path}")

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    try:
        report = analyzer.analyze_paths(paths, select=select, ignore=ignore)
    except ValueError as exc:  # unknown rule code
        raise UsageError(str(exc)) from None

    baseline_path = _resolve_baseline_path(args)
    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        Baseline.from_findings(report.findings).save(target)
        print(
            f"wrote {len(report.findings)} baselined findings to {target}",
            file=sys.stderr,
        )
        return EXIT_CLEAN

    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            raise UsageError(f"cannot read baseline: {exc}") from None
        report.findings, report.stale_baseline = baseline.apply(
            report.findings
        )

    if args.format == "json":
        reporters.write_json(report, sys.stdout)
    else:
        print(
            reporters.render_text(
                report, stale_hint="rerun with --write-baseline"
            )
        )
    clean = not report.findings and not report.stale_baseline
    return EXIT_CLEAN if clean else EXIT_FINDINGS


def explain_rule(code: str) -> str:
    """Everything a developer needs to act on one rule code.

    Raises :class:`UsageError` (exit 2) on unknown codes, matching the
    ``--select`` contract.
    """
    try:
        rule = get_rule(code.strip().upper())
    except KeyError as exc:
        raise UsageError(str(exc)) from None
    meta = rule.meta
    lines = [
        f"{meta.code} {meta.name} [{meta.severity}]",
        "",
        meta.summary,
        "",
        meta.rationale,
    ]
    if meta.example:
        lines += ["", "Example violation:", ""]
        lines += [f"    {line}" for line in meta.example.splitlines()]
    lines += [
        "",
        "Suppress one finding (with a recorded reason):",
        "",
        f"    offending_line()  # sievelint: disable={meta.code} -- why",
        "",
        "or grandfather existing findings into the committed baseline:",
        "",
        f"    sievelint --select {meta.code} --write-baseline",
    ]
    return "\n".join(lines)


def _split_codes(groups: List[str]) -> List[str]:
    codes: List[str] = []
    for group in groups:
        codes.extend(c for c in group.split(",") if c.strip())
    return codes


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.baseline is not None:
        path = Path(args.baseline)
        if not path.exists():
            raise UsageError(f"baseline file does not exist: {path}")
        return path
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() else None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sievelint",
        description=(
            "AST-based invariant checker for the SieveStore repro: "
            "determinism, worker-safety, and zero-overhead contracts."
        ),
    )
    configure_parser(parser)
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on bad usage already; normalize others.
        return EXIT_USAGE if exc.code not in (0, None) else EXIT_CLEAN
    return run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
