"""SVL003 — only picklable objects cross the process-pool boundary.

``repro.sim.parallel`` ships tasks to worker processes; lambdas, local
functions, open file handles, and locks all fail to pickle — but only
at runtime, on the submit path, often after minutes of simulation.
This rule rejects them at the call site: everything handed to
``.submit(...)`` or to ``ProcessPoolExecutor(initializer=...)`` must be
a module-level callable or plain data.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.staticcheck.astutil import unparse_short, walk_scope
from repro.staticcheck.context import ModuleContext
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

#: Modules whose submit sites are checked.
SCOPED_MODULES = frozenset({"repro.sim.parallel"})

#: Constructors whose instances hold OS state that cannot pickle.
UNPICKLABLE_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

POOL_KEYWORDS = ("initializer", "initargs")


@register
class PicklableRule(Rule):
    meta = RuleMeta(
        code="SVL003",
        name="picklable-submit",
        severity=Severity.ERROR,
        summary="unpicklable object handed to the process pool",
        rationale=(
            "Lambdas, nested functions, open files, and locks fail to "
            "pickle only at runtime, on the submit path.  Worker "
            "payloads must be module-level callables and plain data."
        ),
        example=(
            "def run(pool, tasks):\n"
            "    for task in tasks:\n"
            "        pool.submit(lambda: task.run())  # lambdas don't pickle\n"
        ),
        fixture_module="repro.sim.parallel",
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if ctx.module not in SCOPED_MODULES:
            return []
        findings: List[Finding] = []
        # Module-level scope first, then each function with its locals.
        self._check_scope(ctx, ctx.tree.body, findings, top_level=True)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_scope(ctx, node.body, findings, top_level=False)
        return findings

    def _check_scope(
        self,
        ctx: ModuleContext,
        body: List[ast.stmt],
        findings: List[Finding],
        top_level: bool,
    ) -> None:
        bad_locals = self._collect_bad_locals(body, top_level)
        for node in walk_scope(body):
            if not isinstance(node, ast.Call):
                continue
            for payload in self._payload_exprs(node):
                problem = self._classify(ctx, payload, bad_locals)
                if problem is not None:
                    findings.append(
                        Finding(
                            code=self.meta.code,
                            severity=self.meta.severity,
                            path=str(ctx.path),
                            line=payload.lineno,
                            col=payload.col_offset,
                            message=problem,
                            module=ctx.module,
                            symbol=unparse_short(payload),
                        )
                    )

    def _collect_bad_locals(
        self, body: List[ast.stmt], top_level: bool
    ) -> Dict[str, str]:
        """Names in this scope bound to unpicklable things.

        At module level ``def`` statements are picklable by reference,
        so only functions nested inside another function are flagged.
        """
        bad: Dict[str, str] = {}
        for node in walk_scope(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not top_level:
                    bad[node.name] = "a nested function"
            elif isinstance(node, ast.Assign):
                reason = self._value_problem(node.value)
                if reason is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bad[target.id] = reason
            elif isinstance(node, ast.withitem):
                call = node.context_expr
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id == "open"
                    and isinstance(node.optional_vars, ast.Name)
                ):
                    bad[node.optional_vars.id] = "an open file handle"
        return bad

    def _value_problem(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Name) and value.func.id == "open":
                return "an open file handle"
        return None

    def _payload_exprs(self, call: ast.Call) -> List[ast.expr]:
        """Expressions that will be pickled for this call, if any."""
        payloads: List[ast.expr] = []
        if isinstance(call.func, ast.Attribute) and call.func.attr == "submit":
            payloads.extend(call.args)
            payloads.extend(kw.value for kw in call.keywords if kw.arg)
        else:
            name = (
                call.func.attr
                if isinstance(call.func, ast.Attribute)
                else call.func.id
                if isinstance(call.func, ast.Name)
                else ""
            )
            if name == "ProcessPoolExecutor":
                for kw in call.keywords:
                    if kw.arg in POOL_KEYWORDS:
                        payloads.append(kw.value)
        return payloads

    def _classify(
        self, ctx: ModuleContext, expr: ast.expr, bad_locals: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(expr, ast.Lambda):
            return "lambda submitted to the process pool cannot pickle"
        if isinstance(expr, ast.Name) and expr.id in bad_locals:
            return (
                f"{expr.id!r} is {bad_locals[expr.id]} and cannot pickle "
                "across the pool boundary"
            )
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id == "open":
                return "open file handle submitted to the process pool"
            resolved = ctx.imports.resolve(expr.func)
            if resolved in UNPICKLABLE_CONSTRUCTORS:
                return f"{resolved}() holds OS state and cannot pickle"
        return None
