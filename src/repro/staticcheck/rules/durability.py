"""SVL007 — persisted-artifact writes must go through repro.util.atomic.

Call-graph-sensitive rule.  Results, manifests, fault plans, columnar
caches, and store metadata are read back by later runs and by
concurrent shards; a bare ``open(path, "w")`` (or ``write_text`` /
``numpy.savez``) that dies mid-write leaves a torn file that poisons
every consumer.  ``repro.util.atomic`` exists precisely for this
(tmp file + fsync + ``os.replace`` + directory fsync), so in the
persistence-bearing packages every truncating write must flow through
it.

A write is *safe* when its target was bound by a surrounding
``with atomic_write(...) as h`` / ``with atomic_write_path(...) as p``.
Helpers that write through a bare parameter (``def save(path): ...``)
are exempt **interprocedurally**: if every resolved call site in the
project passes an atomic-bound value for that parameter, the helper
inherits safety from its callers; if any call site passes a raw
destination — or no call site resolves at all — the write is flagged.

Append-mode logs (``"a"``) and ``"x"`` marker files are deliberately
out of scope: they are not replace-style publications, and atomic
replacement is the wrong tool for them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.staticcheck.astutil import module_matches, unparse_short, walk_scope
from repro.staticcheck.callgraph import (
    PERSISTED_WRITE_ATTRS,
    PERSISTED_WRITE_CALLS,
    FunctionNode,
    ProjectGraph,
    _write_mode,
)
from repro.staticcheck.context import ModuleContext, Project
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

#: Packages whose files are persisted artifacts (read back by later
#: runs / other processes).  repro.util.atomic itself and the obs /
#: staticcheck tooling write only derived, regenerable output.
SCOPED_MODULES = frozenset(
    {"repro.traces", "repro.sim", "repro.faults", "repro.serve"}
)

#: The sanctioned writers; a name bound by ``with <one of these>(...)``
#: marks that name (handle or temp path) as a safe write target.
ATOMIC_WRITERS = frozenset(
    {
        "repro.util.atomic.atomic_write",
        "repro.util.atomic.atomic_write_path",
        "atomic_write",
        "atomic_write_path",
    }
)


@register
class DurableWriteRule(Rule):
    meta = RuleMeta(
        code="SVL007",
        name="durable-write",
        severity=Severity.ERROR,
        summary="persisted artifact written without repro.util.atomic",
        rationale=(
            "Manifests, results, fault plans, and store metadata are "
            "re-read by later runs and concurrent shards; a process "
            "dying inside a bare open(path, 'w') / write_text / "
            "np.savez leaves a torn file every consumer then trusts.  "
            "Route the write through atomic_write / atomic_write_path "
            "(tmp + fsync + os.replace), which publishes all-or-"
            "nothing."
        ),
        example=(
            "import json, numpy as np\n"
            "def save_result(path, payload, arrays):\n"
            "    Path(path).write_text(json.dumps(payload))  # torn on crash\n"
            '    with open(path + ".npz", "wb") as handle:  # ditto\n'
            "        np.savez(handle, **arrays)"
        ),
        fixture_module="repro.sim.fixture",
    )

    def check_project(self, project: Project) -> List[Finding]:
        graph = project.graph
        writes: List[Tuple[FunctionNode, ast.Call, ast.expr]] = []
        safe_by_fn: Dict[str, Set[str]] = {}
        module_findings: List[Finding] = []

        for ctx in project:
            if not module_matches(ctx.module, SCOPED_MODULES):
                continue
            for fn in graph.in_module(ctx.module):
                body = getattr(fn.node, "body", [])
                safe = _atomic_bound_names(ctx, body)
                safe_by_fn[fn.qualname] = safe
                for call, target in _write_sites(ctx, body):
                    if _target_is_safe(target, safe):
                        continue
                    writes.append((fn, call, target))
            # Module-level writes (walk_scope never enters function
            # bodies, so these are import-time statements only); no
            # parameters to defer to.
            safe = _atomic_bound_names(ctx, ctx.tree.body)
            for call, target in _write_sites(ctx, ctx.tree.body):
                if not _target_is_safe(target, safe):
                    module_findings.append(
                        self._finding(ctx, "<module>", call, target)
                    )

        safe_params = _safe_parameters(graph, safe_by_fn)
        findings = list(module_findings)
        for fn, call, target in writes:
            param = _parameter_name(fn, target)
            if param is not None and (fn.qualname, param) in safe_params:
                continue
            findings.append(self._finding(fn.ctx, fn.qualname, call, target))
        return findings

    def _finding(
        self,
        ctx: ModuleContext,
        owner: str,
        call: ast.Call,
        target: ast.expr,
    ) -> Finding:
        return Finding(
            code=self.meta.code,
            severity=self.meta.severity,
            path=str(ctx.path),
            line=call.lineno,
            col=call.col_offset,
            end_line=getattr(call, "end_lineno", 0) or call.lineno,
            message=(
                f"write to persisted target "
                f"{unparse_short(target, 40)!r} bypasses repro.util."
                f"atomic; wrap in atomic_write(...) or "
                f"atomic_write_path(...)"
            ),
            module=ctx.module,
            symbol=f"{owner}:{unparse_short(call.func, 40)}",
        )


def _write_sites(
    ctx: ModuleContext, body: List[ast.stmt]
) -> List[Tuple[ast.Call, ast.expr]]:
    """(call, destination expr) for every persisted write in ``body``."""
    sites: List[Tuple[ast.Call, ast.expr]] = []
    for node in walk_scope(body):
        if not isinstance(node, ast.Call):
            continue
        target = _write_target(ctx, node)
        if target is not None:
            sites.append((node, target))
    sites.sort(key=lambda pair: (pair[0].lineno, pair[0].col_offset))
    return sites


def _write_target(ctx: ModuleContext, call: ast.Call) -> Optional[ast.expr]:
    """The destination expression of a persisted write, or None."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        if _write_mode(call) is not None and call.args:
            return call.args[0]
        return None
    if isinstance(func, ast.Attribute):
        if func.attr in PERSISTED_WRITE_ATTRS:
            return func.value
        if func.attr == "open" and _write_mode(call, mode_index=0) is not None:
            return func.value
    resolved = ctx.imports.resolve(func)
    if resolved in PERSISTED_WRITE_CALLS and call.args:
        return call.args[0]
    return None


def _atomic_bound_names(ctx: ModuleContext, body: List[ast.stmt]) -> Set[str]:
    """Names bound by ``with atomic_write*(...) as name`` in this scope."""
    safe: Set[str] = set()
    for node in walk_scope(body):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            resolved = ctx.imports.resolve(expr.func)
            name = resolved or (
                expr.func.id if isinstance(expr.func, ast.Name) else ""
            )
            if name in ATOMIC_WRITERS and isinstance(
                item.optional_vars, ast.Name
            ):
                safe.add(item.optional_vars.id)
    return safe


def _target_is_safe(target: ast.expr, safe: Set[str]) -> bool:
    """True when the destination is (derived from) an atomic binding.

    ``handle`` itself, or path arithmetic rooted at a safe temp name
    (``tmp / "part.npz"``, ``str(tmp)``) all count.
    """
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and node.id in safe:
            return True
    return False


def _parameter_name(fn: FunctionNode, target: ast.expr) -> Optional[str]:
    """``target``'s root name if it is a bare parameter of ``fn``."""
    node = target
    # Unwrap Path(path) / str(path) style constructor wrapping.
    while isinstance(node, ast.Call) and len(node.args) == 1:
        node = node.args[0]
    if not isinstance(node, ast.Name):
        return None
    args = getattr(fn.node, "args", None)
    if args is None:
        return None
    names = {a.arg for a in args.args + args.kwonlyargs + args.posonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return node.id if node.id in names else None


def _parameter_index(fn: FunctionNode, param: str) -> Optional[int]:
    args = getattr(fn.node, "args", None)
    if args is None:
        return None
    positional = [a.arg for a in args.posonlyargs + args.args]
    if fn.cls is not None and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    try:
        return positional.index(param)
    except ValueError:
        return None


def _safe_parameters(
    graph: ProjectGraph, safe_by_fn: Dict[str, Set[str]]
) -> Set[Tuple[str, str]]:
    """(qualname, param) pairs safe at every resolved call site.

    Every positional parameter of every scoped function is a candidate
    (pass-through helpers forward safety without writing themselves).
    The fixpoint is pessimistic: a parameter starts unsafe and is
    promoted only when the function has at least one resolved caller
    and *every* caller passes an atomic-bound name — or a parameter
    already proven safe (helper chains).  Unresolvable call sites keep
    the parameter unsafe, so missing call-graph edges can only cause
    extra findings, never hide one.
    """
    candidates: Set[Tuple[str, str]] = set()
    for qualname in safe_by_fn:
        fn = graph.function(qualname)
        if fn is None:
            continue
        args = getattr(fn.node, "args", None)
        if args is None:
            continue
        for arg in args.posonlyargs + args.args:
            if arg.arg in ("self", "cls"):
                continue
            if _parameter_index(fn, arg.arg) is not None:
                candidates.add((qualname, arg.arg))

    safe: Set[Tuple[str, str]] = set()
    changed = True
    while changed:
        changed = False
        for qualname, param in sorted(candidates - safe):
            fn = graph.function(qualname)
            if fn is None:
                continue
            index = _parameter_index(fn, param)
            sites = graph.callers_of(qualname)
            if index is None or not sites:
                continue
            if all(
                _argument_is_safe(caller, call, index, param, safe_by_fn, safe)
                for caller, call in sites
            ):
                safe.add((qualname, param))
                changed = True
    return safe


def _argument_is_safe(
    caller: FunctionNode,
    call: ast.Call,
    index: int,
    param: str,
    safe_by_fn: Dict[str, Set[str]],
    safe_params: Set[Tuple[str, str]],
) -> bool:
    expr: Optional[ast.expr] = None
    if index < len(call.args):
        expr = call.args[index]
    else:
        for kw in call.keywords:
            if kw.arg == param:
                expr = kw.value
    if expr is None:
        return False
    if _target_is_safe(expr, safe_by_fn.get(caller.qualname, set())):
        return True
    if isinstance(expr, ast.Name):
        return (caller.qualname, expr.id) in safe_params
    return False
