"""Rule implementations.  Importing this package registers every rule."""

from __future__ import annotations

from repro.staticcheck.rules import (  # noqa: F401
    obsguard,
    ordering,
    picklable,
    randomness,
    schema,
    wallclock,
)
