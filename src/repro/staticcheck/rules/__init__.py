"""Rule implementations.  Importing this package registers every rule."""

from __future__ import annotations

from repro.staticcheck.rules import (  # noqa: F401
    concurrency,
    durability,
    exactmath,
    lifecycle,
    metricnames,
    obsguard,
    ordering,
    picklable,
    randomness,
    schema,
    wallclock,
)
