"""SVL010 — resources opened without a close on every path.

Per-scope dataflow rule, unscoped (tests leak file descriptors too).
An ``open`` / ``sqlite3.connect`` / ``numpy.memmap`` / ``zipfile`` /
``gzip`` handle must be governed: opened in a ``with`` block, closed
by name, or handed off (returned, yielded, stored on an object,
passed to another callable) so ownership visibly moves elsewhere.

Two shapes are flagged:

* an immediate-chain leak — ``open(p).read()`` or a bare ``open(p)``
  expression statement — where the handle is never even bound;
* a bound handle (``fh = open(p)``) whose only uses in the scope are
  reads/writes: no ``close()``, no ``with``, no escape.

The analysis is per-scope and deliberately generous about escapes: a
handle passed as an argument, aliased, returned, or stored into any
container/attribute is assumed managed by the recipient.  Missed leaks
are possible; false positives should be rare.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.staticcheck.astutil import (
    parent_map,
    unparse_short,
    walk_scope,
)
from repro.staticcheck.context import ModuleContext
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

#: Canonical callables whose result owns an OS-level resource.
OPENER_CALLS = frozenset(
    {
        "io.open",
        "sqlite3.connect",
        "numpy.memmap",
        "numpy.lib.format.open_memmap",
        "zipfile.ZipFile",
        "gzip.open",
        "gzip.GzipFile",
        "bz2.open",
        "lzma.open",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
    }
)

#: Builtin / bare names that open resources without an import.
OPENER_NAMES = frozenset({"open"})


@register
class ResourceLifecycleRule(Rule):
    meta = RuleMeta(
        code="SVL010",
        name="resource-lifecycle",
        severity=Severity.WARNING,
        summary="resource opened without close/with on any path",
        rationale=(
            "Leaked descriptors and sqlite handles accumulate across "
            "epochs and shard fan-outs until the process hits "
            "EMFILE — typically mid-run, far from the leak.  Open "
            "resources in a with block, close them in finally, or "
            "hand them to an owner that does."
        ),
        example=(
            "import json\n"
            "def load_manifest(path):\n"
            "    return json.loads(open(path).read())  # fd leaks\n"
            "def tail(path):\n"
            "    fh = open(path)\n"
            "    fh.seek(-100, 2)\n"
            "    return fh.read()  # fh never closed\n"
        ),
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        parents = parent_map(ctx.tree)
        findings: List[Finding] = []
        scopes: List[List[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            findings.extend(self._check_scope(ctx, body, parents))
        return findings

    def _check_scope(
        self,
        ctx: ModuleContext,
        body: List[ast.stmt],
        parents: Dict[ast.AST, ast.AST],
    ) -> List[Finding]:
        findings: List[Finding] = []
        tracked: Dict[str, ast.Call] = {}
        for node in walk_scope(body):
            if not isinstance(node, ast.Call):
                continue
            if not _is_opener(ctx, node):
                continue
            disposition = _immediate_disposition(node, parents)
            if disposition == "managed":
                continue
            if disposition == "leak":
                findings.append(self._finding(ctx, node, bound=None))
            elif disposition.startswith("bound:"):
                tracked[disposition.split(":", 1)[1]] = node
        for name, call in sorted(tracked.items()):
            if not _name_is_governed(name, body):
                findings.append(self._finding(ctx, call, bound=name))
        return findings

    def _finding(
        self, ctx: ModuleContext, call: ast.Call, bound: Optional[str]
    ) -> Finding:
        what = unparse_short(call.func, 30)
        if bound is None:
            message = (
                f"{what}(...) result is never bound or closed; use a "
                f"with block (the handle leaks as soon as this "
                f"expression finishes)"
            )
            symbol = f"{what}:unbound:{call.lineno}"
        else:
            message = (
                f"{bound!r} = {what}(...) is never closed on any path; "
                f"use a with block or close it in finally"
            )
            symbol = f"{what}:{bound}"
        return Finding(
            code=self.meta.code,
            severity=self.meta.severity,
            path=str(ctx.path),
            line=call.lineno,
            col=call.col_offset,
            end_line=getattr(call, "end_lineno", 0) or call.lineno,
            message=message,
            module=ctx.module,
            symbol=symbol,
        )


def _is_opener(ctx: ModuleContext, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id in OPENER_NAMES:
        return True
    resolved = ctx.imports.resolve(func)
    return resolved in OPENER_CALLS


def _immediate_disposition(
    call: ast.Call, parents: Dict[ast.AST, ast.AST]
) -> str:
    """How the opener's result is used at the call site.

    Returns ``"managed"`` (with block / escapes to another owner),
    ``"bound:<name>"`` (assigned to a local, track it), or ``"leak"``
    (never bound: bare statement or immediate method chain).
    """
    parent = parents.get(call)
    # with open(...) as f: / with closing(open(...)):
    node: ast.AST = call
    probe = parent
    while probe is not None:
        if isinstance(probe, ast.withitem):
            return "managed"
        if isinstance(probe, ast.stmt):
            break
        node, probe = probe, parents.get(probe)
    if isinstance(parent, ast.withitem):
        return "managed"
    if isinstance(parent, ast.Assign):
        if len(parent.targets) == 1 and isinstance(
            parent.targets[0], ast.Name
        ):
            return f"bound:{parent.targets[0].id}"
        return "managed"  # tuple/attribute target: ownership moved
    if isinstance(parent, ast.AnnAssign) and isinstance(
        parent.target, ast.Name
    ):
        return f"bound:{parent.target.id}"
    if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom, ast.Await)):
        return "managed"  # caller owns it now
    if isinstance(parent, ast.Call):
        return "managed"  # argument: recipient owns it (closing(), wrapper)
    if isinstance(parent, ast.Attribute):
        return "leak"  # open(p).read() — handle dropped after the chain
    if isinstance(parent, ast.Expr):
        return "leak"  # bare open(p) statement
    if isinstance(parent, ast.Starred):
        return "managed"
    if parent is None:
        return "leak"
    # Comprehensions, boolean ops, subscripts, f-strings: the handle
    # is consumed by surrounding expressions we cannot track — assume
    # managed rather than guessing.
    return "managed"


def _name_is_governed(name: str, body: List[ast.stmt]) -> bool:
    """True when ``name`` is closed, with-managed, or escapes the scope."""
    for node in walk_scope(body):
        if isinstance(node, ast.Call):
            func = node.func
            # fh.close() / fh.__exit__ style
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("close", "detach", "release")
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True
            # passed as an argument: recipient owns it
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
                if isinstance(arg, ast.Starred) and (
                    isinstance(arg.value, ast.Name)
                    and arg.value.id == name
                ):
                    return True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        elif isinstance(node, ast.Return):
            if node.value is not None and _mentions(node.value, name):
                return True
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None and _mentions(node.value, name):
                return True
        elif isinstance(node, ast.Assign):
            # fh re-bound elsewhere, aliased, or stored into a
            # container/attribute: ownership visibly moves.
            if isinstance(node.value, ast.Name) and node.value.id == name:
                return True
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if _mentions(node.value, name):
                        return True
        elif isinstance(node, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
            if _mentions(node, name):
                return True  # collected into a structure: tracked there
    return False


def _mentions(node: ast.AST, name: str) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == name:
            return True
    return False
