"""SVL005 — serialized-schema drift without a version bump.

Cross-file rule: re-extracts the field set of every schema in
:mod:`repro.staticcheck.schema_registry` from the scanned ASTs and
compares fields *and* version-constant values against the recorded
expectations.  Fields drifted while the version stayed put is the
contract violation; a bumped version with a stale registry is flagged
too, so the registry itself cannot rot.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Tuple

from repro.staticcheck import schema_registry
from repro.staticcheck.context import ModuleContext, Project
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register
from repro.staticcheck.schema_registry import SchemaSpec

REGISTRY_PATH = "src/repro/staticcheck/schema_registry.py"


@register
class SchemaVersionRule(Rule):
    meta = RuleMeta(
        code="SVL005",
        name="schema-version-bump",
        severity=Severity.ERROR,
        summary="serialized-schema field set changed without a version bump",
        rationale=(
            "Loaders refuse unknown schema versions by contract; a "
            "field-set change without the matching SCHEMA_VERSION bump "
            "ships files old readers mis-parse.  Bump the constant and "
            "update the checked field-registry together."
        ),
        example=(
            "SCHEMA_VERSION = 1  # unchanged...\n"
            "def result_to_dict(result):\n"
            "    return {\n"
            '        "schema_version": SCHEMA_VERSION,\n'
            '        "policy_name": result.policy_name,\n'
            '        "brand_new_field": 0,  # ...but the field set grew\n'
            "    }"
        ),
        fixture_module="repro.sim.serialize",
    )

    def check_project(self, project: Project) -> List[Finding]:
        by_module = project.by_module
        findings: List[Finding] = []
        for spec in schema_registry.SPECS:
            ctx = by_module.get(spec.fields_module)
            if ctx is None:
                continue  # schema's module not under this scan
            extracted = self._extract(ctx, spec)
            if extracted is None:
                findings.append(
                    self._finding(
                        ctx,
                        1,
                        spec,
                        f"schema registry is stale: {spec.symbol!r} not "
                        f"found in {spec.fields_module}; update "
                        f"{REGISTRY_PATH}",
                    )
                )
                continue
            line, actual_fields = extracted
            fields_ok = actual_fields == spec.fields
            version_ctx = by_module.get(spec.version_module)
            versions_ok, version_detail = self._check_versions(
                spec, version_ctx
            )
            if fields_ok and versions_ok:
                continue
            if not fields_ok and versions_ok:
                added = sorted(actual_fields - spec.fields)
                removed = sorted(spec.fields - actual_fields)
                delta = "; ".join(
                    part
                    for part in (
                        f"added {', '.join(added)}" if added else "",
                        f"removed {', '.join(removed)}" if removed else "",
                    )
                    if part
                )
                constants = ", ".join(name for name, _ in spec.versions)
                findings.append(
                    self._finding(
                        ctx,
                        line,
                        spec,
                        f"schema {spec.name!r} field set changed ({delta}) "
                        f"without bumping {constants}; bump the version "
                        f"and update {REGISTRY_PATH}",
                    )
                )
            else:
                # Version constants moved (with or without a field
                # change): the registry's expectations are stale.
                target_ctx = version_ctx or ctx
                findings.append(
                    self._finding(
                        target_ctx,
                        line if version_ctx is None else version_detail[1],
                        spec,
                        f"schema {spec.name!r}: {version_detail[0]}; update "
                        f"the {REGISTRY_PATH} entry to the new contract",
                    )
                )
        return findings

    def _extract(
        self, ctx: ModuleContext, spec: SchemaSpec
    ) -> Optional[Tuple[int, FrozenSet[str]]]:
        if spec.kind == "dataclass":
            return schema_registry.extract_dataclass_fields(
                ctx.tree, spec.symbol
            )
        return schema_registry.extract_dict_fields(
            ctx.tree, spec.symbol, spec.track_var
        )

    def _check_versions(
        self, spec: SchemaSpec, version_ctx: Optional[ModuleContext]
    ) -> Tuple[bool, Tuple[str, int]]:
        """(all version constants match, (detail message, line))."""
        if version_ctx is None:
            # Version module outside the scan: trust the field check
            # alone rather than guessing.
            return True, ("", 1)
        actual = schema_registry.extract_versions(version_ctx.tree)
        for name, expected in spec.versions:
            if name not in actual:
                return False, (
                    f"version constant {name} missing from "
                    f"{spec.version_module}",
                    1,
                )
            if actual[name] != expected:
                line = _constant_line(version_ctx.tree, name)
                return False, (
                    f"{name} is {actual[name]!r} but the registry expects "
                    f"{expected!r}",
                    line,
                )
        return True, ("", 1)

    def _finding(
        self, ctx: ModuleContext, line: int, spec: SchemaSpec, message: str
    ) -> Finding:
        return Finding(
            code=self.meta.code,
            severity=self.meta.severity,
            path=str(ctx.path),
            line=line,
            col=0,
            message=message,
            module=ctx.module,
            symbol=spec.name,
        )


def _constant_line(tree: ast.Module, name: str) -> int:
    for stmt in tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return stmt.lineno
    return 1
