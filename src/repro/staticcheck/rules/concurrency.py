"""SVL008 — state shared across thread/process boundaries.

Call-graph-sensitive rule with two sub-checks:

* **Shared connections** (repro.serve): a ``sqlite3.connect`` / ``open``
  result stored on ``self`` or at module level is shared by every
  thread the serving appliance runs — sqlite connections are
  single-thread by default and file handles share one seek position.
  The sanctioned pattern is a per-thread pool under
  ``threading.local()`` (see ``repro.serve.store``), which stores into
  ``self._local`` and is therefore not matched here.

* **Worker-global mutation** (interprocedural SVL003 follow-up): a
  function that the call graph proves runs inside a pool worker —
  submitted, mapped, an ``initializer=``, or transitively called from
  one — mutating a module-level mutable.  SVL003 catches unpicklable
  *payloads* at the submit site; this catches the quieter bug where
  the payload pickles fine but the worker updates a module global the
  parent (and the merged results) never see.  The deliberate
  worker-global idiom (set once per worker process in an initializer)
  is expected to carry an inline suppression stating that intent.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.staticcheck.astutil import unparse_short, walk_scope
from repro.staticcheck.callgraph import FunctionNode
from repro.staticcheck.context import ModuleContext, Project
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

#: Package whose classes serve concurrent clients by design.
SERVE_PREFIX = "repro.serve"

#: Constructors whose results must not be shared across threads.
THREAD_BOUND_CONSTRUCTORS = frozenset({"sqlite3.connect", "sqlite3.Connection"})

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)


@register
class SharedStateRule(Rule):
    meta = RuleMeta(
        code="SVL008",
        name="thread-shared-state",
        severity=Severity.ERROR,
        summary="connection or module state shared across a concurrency boundary",
        rationale=(
            "sqlite3 connections are single-thread by default and file "
            "handles share one seek position, so storing one on self/"
            "module in the multi-threaded serve path races; and a "
            "module global mutated inside a pool worker updates the "
            "worker's copy of the module, silently diverging from the "
            "parent.  Use threading.local() pools for connections and "
            "explicit task results (or a suppressed, documented "
            "initializer-set worker global) for worker state."
        ),
        example=(
            "import sqlite3, concurrent.futures\n"
            "class Store:\n"
            "    def __init__(self, path):\n"
            "        self.conn = sqlite3.connect(path)  # shared by all threads\n"
            "_SEEN = set()\n"
            "def worker(block):\n"
            "    _SEEN.add(block)  # mutates the worker's copy only\n"
            "def run(pool, blocks):\n"
            "    pool.map(worker, blocks)"
        ),
        fixture_module="repro.serve.fixture",
    )

    def check_project(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for ctx in project:
            if ctx.module == SERVE_PREFIX or ctx.module.startswith(
                SERVE_PREFIX + "."
            ):
                findings.extend(self._check_shared_connections(ctx))
        graph = project.graph
        for fn in graph.pool_worker_functions():
            findings.extend(self._check_worker_globals(fn))
        return findings

    # -- sub-check: connections stored on self / module in serve -----------

    def _check_shared_connections(self, ctx: ModuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not self._is_thread_bound(ctx, node.value):
                continue
            for target in node.targets:
                label = _shared_target(ctx, node, target)
                if label is None:
                    continue
                findings.append(
                    Finding(
                        code=self.meta.code,
                        severity=self.meta.severity,
                        path=str(ctx.path),
                        line=node.lineno,
                        col=node.col_offset,
                        end_line=getattr(node, "end_lineno", 0) or node.lineno,
                        message=(
                            f"{unparse_short(node.value.func, 30)} result "
                            f"stored on {label}; every serving thread "
                            f"shares it — keep per-thread instances in a "
                            f"threading.local() pool "
                            f"(see repro.serve.store)"
                        ),
                        module=ctx.module,
                        symbol=f"shared-conn:{label}",
                    )
                )
        return findings

    def _is_thread_bound(self, ctx: ModuleContext, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        resolved = ctx.imports.resolve(value.func)
        return resolved in THREAD_BOUND_CONSTRUCTORS

    # -- sub-check: module-global mutation inside pool workers -------------

    def _check_worker_globals(self, fn: FunctionNode) -> List[Finding]:
        module_names = _module_level_names(fn.ctx)
        declared_global = _global_names(fn)
        body = getattr(fn.node, "body", [])
        findings: List[Finding] = []
        seen: Set[int] = set()

        def flag(node: ast.AST, name: str, what: str) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            findings.append(
                Finding(
                    code=self.meta.code,
                    severity=self.meta.severity,
                    path=str(fn.ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    end_line=getattr(node, "end_lineno", 0) or node.lineno,
                    message=(
                        f"{what} of module-level {name!r} inside "
                        f"{fn.name!r}, which the call graph places in a "
                        f"pool worker; the mutation lands in the "
                        f"worker's copy of the module, not the parent's "
                        f"— return the value through the task result "
                        f"instead"
                    ),
                    module=fn.ctx.module,
                    symbol=f"{fn.qualname}:{name}",
                )
            )

        for node in walk_scope(body):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    name = _store_root(target)
                    if name is None:
                        continue
                    if isinstance(target, ast.Name):
                        # Plain Name stores rebind a local unless the
                        # function declared the name global.
                        if name in declared_global and name in module_names:
                            flag(node, name, "rebinding")
                    elif name in module_names and name not in _local_names(
                        fn, declared_global
                    ):
                        flag(node, name, "item/field store")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    name = _store_root(target)
                    if (
                        name is not None
                        and name in module_names
                        and (
                            not isinstance(target, ast.Name)
                            or name in declared_global
                        )
                    ):
                        flag(node, name, "deletion")
            elif isinstance(node, ast.Call):
                name = _mutating_receiver(node)
                if (
                    name is not None
                    and name in module_names
                    and name not in _local_names(fn, declared_global)
                ):
                    flag(node, name, f"in-place {node.func.attr}()")
        return findings


def _shared_target(
    ctx: ModuleContext, stmt: ast.Assign, target: ast.expr
) -> Optional[str]:
    """Human label when ``target`` is self.<attr> or a module global."""
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return f"self.{target.attr}"
    if isinstance(target, ast.Name):
        # Module level = not inside any function scope; cheap check via
        # col_offset 0 is wrong (try/if bodies), so walk the tree once.
        if _is_module_level_stmt(ctx.tree, stmt):
            return target.id
    return None


def _is_module_level_stmt(tree: ast.Module, stmt: ast.stmt) -> bool:
    for node in walk_scope(tree.body):
        if node is stmt:
            return True
    return False


def _module_level_names(ctx: ModuleContext) -> Set[str]:
    """Names bound by module-level statements (class bodies excluded)."""
    names: Set[str] = set()

    def visit(stmts: List[ast.stmt]) -> None:
        for node in stmts:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # class attrs / function locals are not globals
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.If, ast.Try, ast.For, ast.While)):
                for block in ("body", "orelse", "finalbody"):
                    visit(getattr(node, block, []) or [])
                for handler in getattr(node, "handlers", []):
                    visit(handler.body)

    visit(ctx.tree.body)
    return names


def _global_names(fn: FunctionNode) -> Set[str]:
    names: Set[str] = set()
    for node in walk_scope(getattr(fn.node, "body", [])):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _local_names(fn: FunctionNode, declared_global: Set[str]) -> Set[str]:
    """Names that are local to ``fn`` (parameters + plain assignments)."""
    local: Set[str] = set()
    args = getattr(fn.node, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            local.add(arg.arg)
        if args.vararg:
            local.add(args.vararg.arg)
        if args.kwarg:
            local.add(args.kwarg.arg)
    for node in walk_scope(getattr(fn.node, "body", [])):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.For)):
            target = node.target
            if isinstance(target, ast.Name):
                local.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    local.add(item.optional_vars.id)
    return local - declared_global


def _store_root(target: ast.expr) -> Optional[str]:
    """Root name of an assignment/delete target."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutating_receiver(call: ast.Call) -> Optional[str]:
    """``NAME`` when the call is ``NAME.<mutating-method>(...)``."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in MUTATING_METHODS
        and isinstance(func.value, ast.Name)
    ):
        return func.value.id
    return None
