"""SVL004 — observability handles must be None-guarded at use.

``repro.obs`` accessors (``get_context``/``get_registry``/
``get_events``, and the engine's ``_engine_obs`` bundle) return None
when observability is off — which is the default, and the mode whose
output the byte-identity tests pin.  Dereferencing such a handle
without the None-predicate guard either crashes metrics-off runs or,
worse, tempts a truthiness rewrite that silently perturbs them.  This
rule tracks every variable assigned from an accessor and requires each
attribute/subscript access on it to sit under an ``is not None`` guard
(plain ``if``, early-exit, conditional expression, or short-circuit
``and``/``or``).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.staticcheck.astutil import module_matches
from repro.staticcheck.context import ModuleContext
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

#: The accessors themselves (and the checker) are exempt.
EXEMPT_MODULES = ("repro.obs", "repro.staticcheck")

#: repro.obs accessor function names returning Optional handles.
ACCESSOR_NAMES = frozenset({"get_context", "get_registry", "get_events"})

#: Module-local producers of Optional observation bundles.
LOCAL_PRODUCERS = frozenset({"_engine_obs"})


@register
class ObsGuardRule(Rule):
    meta = RuleMeta(
        code="SVL004",
        name="obs-none-guard",
        severity=Severity.ERROR,
        summary="unguarded dereference of an Optional observability handle",
        rationale=(
            "Observability accessors return None when metrics are off "
            "(the default, byte-identity-pinned mode).  Every use must "
            "sit under the `is not None` guard so the hot path stays "
            "zero-overhead and crash-free with metrics disabled."
        ),
        example=(
            "from repro.obs import get_registry\n"
            "def record(outcome):\n"
            "    registry = get_registry()\n"
            '    registry.counter("ops_total").inc()  # None when metrics off\n'
        ),
        fixture_module="repro.sim.fixture",
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if not ctx.module.startswith("repro."):
            return []
        if module_matches(ctx.module, EXEMPT_MODULES):
            return []
        self._ctx = ctx
        self._findings: List[Finding] = []
        self._walk_block(ctx.tree.body, tracked=set(), guarded=set())
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_block(node.body, tracked=set(), guarded=set())
        return self._findings

    # -- producer detection -------------------------------------------------

    def _is_producer(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name) and func.id in (
            ACCESSOR_NAMES | LOCAL_PRODUCERS
        ):
            # Bare name: either `from repro.obs.runtime import get_x`
            # (the import map resolves it) or a module-local producer.
            resolved = self._ctx.imports.resolve(func)
            if resolved is None:
                return func.id in LOCAL_PRODUCERS
            return resolved.startswith("repro.obs")
        resolved = self._ctx.imports.resolve(func)
        return (
            resolved is not None
            and resolved.startswith("repro.obs")
            and resolved.rsplit(".", 1)[-1] in ACCESSOR_NAMES
        )

    # -- statement walker ---------------------------------------------------

    def _walk_block(
        self, stmts: List[ast.stmt], tracked: Set[str], guarded: Set[str]
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes get their own fresh walk
            if isinstance(stmt, ast.Assign):
                self._scan_expr(stmt.value, tracked, guarded)
                names = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        self._scan_expr(target, tracked, guarded)
                if self._is_producer(stmt.value):
                    for name in names:
                        tracked.add(name)
                        guarded.discard(name)
                else:
                    for name in names:
                        tracked.discard(name)
                        guarded.discard(name)
                continue
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, tracked, guarded)
                pos, neg = self._guards_from_test(stmt.test, tracked)
                self._walk_block(stmt.body, tracked, guarded | pos)
                self._walk_block(stmt.orelse, tracked, guarded | neg)
                # Early-exit promotion: `if x is None: return` guards
                # the rest of the block.
                if neg and stmt.body and _terminates(stmt.body[-1]):
                    guarded |= neg
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, tracked, guarded)
                self._walk_block(stmt.body, tracked, guarded)
                self._walk_block(stmt.orelse, tracked, guarded)
                continue
            if isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, tracked, guarded)
                pos, _neg = self._guards_from_test(stmt.test, tracked)
                self._walk_block(stmt.body, tracked, guarded | pos)
                self._walk_block(stmt.orelse, tracked, guarded)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, tracked, guarded)
                self._walk_block(stmt.body, tracked, guarded)
                continue
            if isinstance(stmt, ast.Try):
                self._walk_block(stmt.body, tracked, guarded)
                for handler in stmt.handlers:
                    self._walk_block(handler.body, tracked, guarded)
                self._walk_block(stmt.orelse, tracked, guarded)
                self._walk_block(stmt.finalbody, tracked, guarded)
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, tracked, guarded)

    def _guards_from_test(
        self, test: ast.expr, tracked: Set[str]
    ) -> Tuple[Set[str], Set[str]]:
        """(names non-None when true, names non-None when false)."""
        name = _is_not_none_test(test)
        if name is not None and name in tracked:
            return {name}, set()
        name = _is_none_test(test)
        if name is not None and name in tracked:
            return set(), {name}
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            pos: Set[str] = set()
            for value in test.values:
                sub_pos, _ = self._guards_from_test(value, tracked)
                pos |= sub_pos
            return pos, set()
        return set(), set()

    # -- expression scanner -------------------------------------------------

    def _scan_expr(
        self, expr: ast.expr, tracked: Set[str], guarded: Set[str]
    ) -> None:
        if isinstance(expr, ast.IfExp):
            self._scan_expr(expr.test, tracked, guarded)
            pos, neg = self._guards_from_test(expr.test, tracked)
            self._scan_expr(expr.body, tracked, guarded | pos)
            self._scan_expr(expr.orelse, tracked, guarded | neg)
            return
        if isinstance(expr, ast.BoolOp):
            # Short-circuit: `x is not None and x.y` / `x is None or x.y`.
            accum: Set[str] = set()
            for value in expr.values:
                self._scan_expr(value, tracked, guarded | accum)
                pos, neg = self._guards_from_test(value, tracked)
                accum |= pos if isinstance(expr.op, ast.And) else neg
            return
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            base = expr.value
            if (
                isinstance(base, ast.Name)
                and base.id in tracked
                and base.id not in guarded
            ):
                self._report(base)
            self._scan_expr(base, tracked, guarded)
            if isinstance(expr, ast.Subscript):
                self._scan_expr(expr.slice, tracked, guarded)
            return
        if isinstance(expr, ast.Lambda):
            return  # separate scope; captured names analyzed conservatively
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, tracked, guarded)

    def _report(self, name_node: ast.Name) -> None:
        self._findings.append(
            Finding(
                code=self.meta.code,
                severity=self.meta.severity,
                path=str(self._ctx.path),
                line=name_node.lineno,
                col=name_node.col_offset,
                message=(
                    f"{name_node.id!r} comes from a repro.obs accessor and "
                    "may be None when metrics are off; guard the access "
                    f"with `if {name_node.id} is not None:`"
                ),
                module=self._ctx.module,
                symbol=name_node.id,
            )
        )


def _is_not_none_test(test: ast.expr) -> Optional[str]:
    """Name proven non-None when ``test`` is true, else None."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.left, ast.Name)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return test.left.id
    if isinstance(test, ast.Name):
        return test.id  # truthy handle implies non-None
    return None


def _is_none_test(test: ast.expr) -> Optional[str]:
    """Name proven non-None when ``test`` is *false*, else None."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and isinstance(test.left, ast.Name)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return test.left.id
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        if isinstance(test.operand, ast.Name):
            return test.operand.id
    return None


def _terminates(stmt: ast.stmt) -> bool:
    """The statement unconditionally leaves the enclosing block."""
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))
