"""SVL011 — no float arithmetic on block counts and percentile ranks.

Scoped to the three modules whose outputs feed exact, byte-identity-
pinned accounting: ``repro.util.units`` (capacity / block-count
conversions), ``repro.util.intervals`` (epoch bucketing), and
``repro.serve.percentiles`` (nearest-rank selection).  In these
modules a ``math.ceil(a / b)`` computes the rank through a float and
rounds the wrong way once the operands are large enough for IEEE-754
to drop a ULP — the paper's 1%-selectivity claims are exactly the kind
of statistic that moves.

Flagged shapes:

* ``math.ceil(expr)`` / ``math.floor(expr)`` where ``expr`` contains
  true division (``/``) and no ``Fraction`` call;
* ``int(expr)`` / ``round(expr)`` over true division, same exemption;
* ``Fraction(<float literal>)`` — seeds the exact path with an inexact
  value; write ``Fraction(str(x))`` or ``Fraction("0.95")``.

The sanctioned idioms are integer ceiling division (``-(-a // b)``)
and ``math.ceil(Fraction(...) * n)``; floor division (``//``) is
always exact on ints and never flagged.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.staticcheck.astutil import unparse_short
from repro.staticcheck.context import ModuleContext
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

SCOPED_MODULES = frozenset(
    {"repro.util.units", "repro.util.intervals", "repro.serve.percentiles"}
)

#: Rounding callables that truncate a float intermediate.
_ROUNDERS = frozenset({"math.ceil", "math.floor"})
_BUILTIN_ROUNDERS = frozenset({"int", "round"})


@register
class ExactMathRule(Rule):
    meta = RuleMeta(
        code="SVL011",
        name="exact-count-math",
        severity=Severity.ERROR,
        summary="float division feeding a rounding op in exact-math modules",
        rationale=(
            "Block counts and nearest-rank percentile indices are "
            "exact integers; routing them through IEEE-754 division "
            "before ceil/floor/int rounds the wrong way once operands "
            "get large (or the ratio lands on a ULP boundary).  Use "
            "integer ceiling division -(-a // b) or "
            "math.ceil(Fraction(...) * n)."
        ),
        example=(
            "import math\n"
            "def blocks_needed(nbytes, block):\n"
            "    return math.ceil(nbytes / block)  # float rounds wrong at scale\n"
            "def rank(fraction, n):\n"
            "    return int(fraction * n / 100)  # ditto\n"
        ),
        fixture_module="repro.util.units",
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if ctx.module not in SCOPED_MODULES:
            return []
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._flagged_rounding(ctx, node)
            if label is not None:
                findings.append(
                    self._finding(
                        ctx,
                        node,
                        f"{label} over true division computes an exact "
                        f"count through a float; use -(-a // b) or "
                        f"wrap the ratio in Fraction",
                    )
                )
                continue
            if self._is_float_fraction_seed(ctx, node):
                findings.append(
                    self._finding(
                        ctx,
                        node,
                        "Fraction(<float literal>) seeds exact math "
                        "with an inexact value; pass the string form "
                        "(Fraction(str(x)) or Fraction('0.95'))",
                    )
                )
        return findings

    def _flagged_rounding(
        self, ctx: ModuleContext, call: ast.Call
    ) -> Optional[str]:
        """Label of the rounding op when it truncates a float ratio."""
        func = call.func
        label: Optional[str] = None
        resolved = ctx.imports.resolve(func)
        if resolved in _ROUNDERS:
            label = resolved
        elif isinstance(func, ast.Name) and func.id in _BUILTIN_ROUNDERS:
            label = f"{func.id}()"
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
            and func.attr in ("ceil", "floor")
        ):
            label = f"math.{func.attr}"
        if label is None or not call.args:
            return None
        arg = call.args[0]
        if _contains_true_division(arg) and not _contains_fraction(ctx, arg):
            return label
        return None

    def _is_float_fraction_seed(
        self, ctx: ModuleContext, call: ast.Call
    ) -> bool:
        if not _is_fraction_call(ctx, call) or not call.args:
            return False
        first = call.args[0]
        return isinstance(first, ast.Constant) and isinstance(
            first.value, float
        )

    def _finding(
        self, ctx: ModuleContext, call: ast.Call, message: str
    ) -> Finding:
        return Finding(
            code=self.meta.code,
            severity=self.meta.severity,
            path=str(ctx.path),
            line=call.lineno,
            col=call.col_offset,
            end_line=getattr(call, "end_lineno", 0) or call.lineno,
            message=message,
            module=ctx.module,
            symbol=unparse_short(call, 50),
        )


def _contains_true_division(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
    return False


def _contains_fraction(ctx: ModuleContext, node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _is_fraction_call(ctx, sub):
            return True
    return False


def _is_fraction_call(ctx: ModuleContext, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "Fraction":
        return True
    return ctx.imports.resolve(func) == "fractions.Fraction"
