"""SVL006 — no unordered iteration feeding accumulation.

Aggregation loops in stats/allocation paths must visit elements in an
order fixed by the data, not by hash seeding or container identity:
iterating a ``set`` (hash-randomized for strings across processes) or a
bare ``dict.values()``/``.keys()`` view while accumulating makes the
visit order an implementation detail.  For today's integer counters the
sum is order-independent; the rule exists so tomorrow's float
accumulation or order-sensitive merge does not silently become
run-dependent.  Wrap the iterable in ``sorted(...)`` (or iterate a
structure with contractual order) to state the order explicitly.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.staticcheck.astutil import module_matches, unparse_short, walk_scope
from repro.staticcheck.context import ModuleContext
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

#: Packages whose aggregation loops feed counted results.
SCOPED_MODULES = (
    "repro.cache",
    "repro.core",
    "repro.sim",
    "repro.obs",
    "repro.ensemble",
    "repro.traces",
)

UNORDERED_VIEWS = frozenset({"values", "keys"})


@register
class OrderingRule(Rule):
    meta = RuleMeta(
        code="SVL006",
        name="ordered-accumulation",
        severity=Severity.WARNING,
        summary="accumulation over an unordered set/dict view without sorted()",
        rationale=(
            "Aggregation order must be fixed by the data, not hash "
            "seeding: sets and bare dict views make visit order an "
            "implementation detail, which breaks cross-run determinism "
            "the moment accumulation becomes order-sensitive.  Wrap the "
            "iterable in sorted(...)."
        ),
        example=(
            "def total_latency(per_block):\n"
            "    total = 0.0\n"
            "    for block in set(per_block):  # hash order varies per run\n"
            "        total += per_block[block]\n"
            "    return total\n"
        ),
        fixture_module="repro.cache.fixture",
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if not module_matches(ctx.module, SCOPED_MODULES):
            return []
        findings: List[Finding] = []
        for scope_body in self._scopes(ctx.tree):
            set_names = self._setish_names(scope_body)
            for node in walk_scope(scope_body):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if self._accumulates(node.body) and self._unordered(
                        node.iter, set_names
                    ):
                        findings.append(self._finding(ctx, node.iter))
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    # Comprehensions flagged only over set-ish sources,
                    # and only when the output order can matter
                    # (lists/generators; set results are unordered
                    # anyway, dict views follow insertion order).
                    for gen in node.generators:
                        if self._is_setish(gen.iter, set_names):
                            findings.append(self._finding(ctx, gen.iter))
        return findings

    def _scopes(self, tree: ast.Module) -> List[List[ast.stmt]]:
        scopes = [tree.body]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        return scopes

    def _setish_names(self, body: List[ast.stmt]) -> Set[str]:
        """Local names bound to set-valued expressions in this scope."""
        names: Set[str] = set()
        for node in walk_scope(body):
            if isinstance(node, ast.Assign) and self._is_setish(
                node.value, set()
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and self._is_set_annotation(node.annotation)
            ):
                names.add(node.target.id)
        return names

    def _unordered(self, iterable: ast.expr, set_names: Set[str]) -> bool:
        if self._is_sorted_call(iterable):
            return False
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in UNORDERED_VIEWS
            and not iterable.args
        ):
            return True
        return self._is_setish(iterable, set_names)

    def _is_setish(self, expr: ast.expr, set_names: Set[str]) -> bool:
        if self._is_sorted_call(expr):
            return False
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("set", "frozenset"):
                return True
        if isinstance(expr, ast.Name) and expr.id in set_names:
            return True
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            # Set algebra: `seen | pending`, `all - done`.
            return self._is_setish(expr.left, set_names) or self._is_setish(
                expr.right, set_names
            )
        return False

    def _is_set_annotation(self, annotation: ast.expr) -> bool:
        root = annotation
        if isinstance(root, ast.Subscript):
            root = root.value
        return (
            isinstance(root, ast.Name)
            and root.id in ("set", "Set", "FrozenSet", "frozenset")
        ) or (
            isinstance(root, ast.Attribute)
            and root.attr in ("Set", "FrozenSet")
        )

    def _is_sorted_call(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "sorted"
        )

    def _accumulates(self, body: List[ast.stmt]) -> bool:
        for node in walk_scope(body):
            if isinstance(node, ast.AugAssign):
                return True
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Subscript) for t in node.targets
            ):
                return True
        return False

    def _finding(self, ctx: ModuleContext, iterable: ast.expr) -> Finding:
        return Finding(
            code=self.meta.code,
            severity=self.meta.severity,
            path=str(ctx.path),
            line=iterable.lineno,
            col=iterable.col_offset,
            message=(
                f"accumulation iterates {unparse_short(iterable)} whose "
                "order is an implementation detail; wrap it in sorted(...) "
                "to fix the visit order"
            ),
            module=ctx.module,
            symbol=unparse_short(iterable),
        )
