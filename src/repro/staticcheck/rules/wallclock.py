"""SVL001 — no wall-clock reads outside ``repro.obs`` and the CLI.

Checkpoint/resume promises final statistics bit-identical to an
uninterrupted run; a ``time.time()`` in a simulation path makes output
depend on when the process ran.  Monotonic duration measurement
(``time.perf_counter``) is allowed — elapsed wall-seconds are reported,
never fed back into simulated state.
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.astutil import module_matches, unparse_short
from repro.staticcheck.context import ModuleContext
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

#: Canonical callables that read the wall clock.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Modules allowed to read the wall clock: observability timestamps
#: events (explicitly excluded from byte-identity), the CLI stamps
#: user-facing output, and the live serving layer measures real
#: latency around real filesystem operations (it replays trace time
#: for device health, but its measurements are wall time by design).
#: The checker itself is also exempt.
ALLOWED_MODULES = ("repro.obs", "repro.cli", "repro.serve", "repro.staticcheck")


@register
class WallClockRule(Rule):
    meta = RuleMeta(
        code="SVL001",
        name="no-wall-clock",
        severity=Severity.ERROR,
        summary="wall-clock read outside repro.obs / the CLI",
        rationale=(
            "Checkpoint/resume and cross-run comparisons require "
            "bit-identical statistics; wall-clock reads make output "
            "depend on when the process ran.  Use time.perf_counter "
            "for durations, or route timestamps through repro.obs."
        ),
        example=(
            "import time\n"
            "def stamp_result(result):\n"
            '    result["finished_at"] = time.time()  # differs every run\n'
        ),
        fixture_module="repro.sim.fixture",
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if module_matches(ctx.module, ALLOWED_MODULES):
            return []
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved in BANNED_CALLS:
                findings.append(
                    Finding(
                        code=self.meta.code,
                        severity=self.meta.severity,
                        path=str(ctx.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"wall-clock call {resolved}() outside "
                            "repro.obs/the CLI breaks checkpoint/resume "
                            "bit-identity; use time.perf_counter for "
                            "durations or pass timestamps in"
                        ),
                        module=ctx.module,
                        symbol=unparse_short(node.func),
                    )
                )
        return findings
