"""SVL002 — randomness in simulation packages must be explicitly seeded.

Table 2's write-elimination percentages are exact counts; an unseeded
RNG (or the process-global ``random``/``np.random`` state, seedable
from anywhere) silently decouples runs from their recorded seeds.  The
repo's convention: construct ``random.Random(seed)`` /
``np.random.default_rng(seed)`` inside the function that uses it, with
the seed flowing in as a parameter.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.staticcheck.astutil import (
    is_module_level,
    module_matches,
    parent_map,
    unparse_short,
)
from repro.staticcheck.context import ModuleContext
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

#: Packages whose outputs feed the paper's counted results.
SCOPED_MODULES = (
    "repro.core",
    "repro.cache",
    "repro.sim",
    "repro.faults",
    "repro.traces",
)

#: Constructors of explicit RNG instances (fine when seeded, inside a
#: function).  Everything else under random./numpy.random. is the
#: process-global generator and always flagged.
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)


@register
class RandomnessRule(Rule):
    meta = RuleMeta(
        code="SVL002",
        name="seeded-randomness",
        severity=Severity.ERROR,
        summary="module-level or unseeded randomness in a simulation package",
        rationale=(
            "Write/allocation counts are exact; global or unseeded RNG "
            "state decouples runs from recorded seeds.  Construct "
            "random.Random(seed) / np.random.default_rng(seed) inside "
            "the consuming function, seed passed as a parameter."
        ),
        example=(
            "import random\n"
            "def jitter(delay):\n"
            "    return delay * random.random()  # global, unseeded RNG\n"
        ),
        fixture_module="repro.core.fixture",
    )

    def check_module(self, ctx: ModuleContext) -> List[Finding]:
        if not module_matches(ctx.module, SCOPED_MODULES):
            return []
        parents = parent_map(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved is None:
                continue
            problem = self._classify(node, resolved, parents)
            if problem is not None:
                findings.append(
                    Finding(
                        code=self.meta.code,
                        severity=self.meta.severity,
                        path=str(ctx.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=problem,
                        module=ctx.module,
                        symbol=unparse_short(node.func),
                    )
                )
        return findings

    def _classify(
        self,
        node: ast.Call,
        resolved: str,
        parents: Dict[ast.AST, ast.AST],
    ) -> Optional[str]:
        is_global_rng = (
            resolved.startswith("random.") or resolved.startswith("numpy.random.")
        ) and resolved not in RNG_CONSTRUCTORS
        if is_global_rng:
            return (
                f"{resolved}() uses process-global RNG state; construct "
                "an explicit seeded generator instead"
            )
        if resolved in RNG_CONSTRUCTORS:
            if resolved == "random.SystemRandom":
                return (
                    "random.SystemRandom is unseedable by design and can "
                    "never reproduce a recorded run"
                )
            if is_module_level(node, parents):
                return (
                    f"{resolved}(...) at import time creates shared RNG "
                    "state; construct it inside the consuming function"
                )
            if not node.args and not node.keywords:
                return (
                    f"{resolved}() without a seed draws entropy from the "
                    "OS; pass the run's seed explicitly"
                )
        return None
