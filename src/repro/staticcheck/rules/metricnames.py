"""SVL009 — metric registrations must match the declared registry.

Cross-file rule, same contract shape as SVL005 but for observability:
:mod:`repro.staticcheck.metric_registry` declares every metric the
repo emits (name, kind, label names); this rule re-extracts every
``registry.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` call
site with a constant name from the scanned ASTs and compares.

The exporter renders whatever was registered and the parallel runner
merges worker snapshots by name+labels, so a silently renamed metric
or drifted label set breaks dashboards and CI greps without any test
failing.  Three drift directions are flagged: an unregistered name, a
kind/label mismatch against the declared spec, and a stale registry
entry (declared metric whose owning module is in the scan but has no
surviving call site).

Dynamic registrations (non-constant name, e.g. the snapshot-merge path
in ``repro.obs.metrics``) are outside the contract and skipped.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.staticcheck import metric_registry
from repro.staticcheck.context import ModuleContext, Project
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.registry import Rule, RuleMeta, register

REGISTRY_PATH = "src/repro/staticcheck/metric_registry.py"

METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})


@register
class MetricNameRule(Rule):
    meta = RuleMeta(
        code="SVL009",
        name="metric-name-registry",
        severity=Severity.ERROR,
        summary="metric registration drifted from the declared registry",
        rationale=(
            "Dashboards, CI greps, and the parallel runner's snapshot "
            "merge all key on exact metric names and label sets; a "
            "renamed metric or drifted label silently zeroes graphs "
            "and merges nothing.  Declare every metric (name, kind, "
            "labels) in staticcheck/metric_registry.py and keep call "
            "sites in sync with it."
        ),
        example=(
            "def record(registry, outcome):\n"
            "    registry.counter(\n"
            '        "trace_cache_request_total",  # registry declares ..._requests_...\n'
            '        "Trace-cache lookups",\n'
            '        ("result",),  # registry declares ("outcome",)\n'
            "    ).inc(outcome=outcome)"
        ),
        fixture_module="repro.sim.fixture",
    )

    def check_project(self, project: Project) -> List[Finding]:
        specs = metric_registry.specs_by_name()
        findings: List[Finding] = []
        seen_names: Set[str] = set()

        for ctx in project:
            if not ctx.module.startswith("repro."):
                continue
            for call, kind in _registration_sites(ctx.tree):
                name = _constant_name(call)
                if name is None:
                    continue  # dynamic registration, outside the contract
                seen_names.add(name)
                spec = specs.get(name)
                if spec is None:
                    findings.append(
                        self._finding(
                            ctx,
                            call,
                            name,
                            f"metric {name!r} is not declared; add a "
                            f"MetricSpec to {REGISTRY_PATH}",
                        )
                    )
                    continue
                if kind != spec.kind:
                    findings.append(
                        self._finding(
                            ctx,
                            call,
                            name,
                            f"metric {name!r} registered as {kind} but "
                            f"declared as {spec.kind} in {REGISTRY_PATH}",
                        )
                    )
                labels = _constant_labels(call)
                if labels is not None and labels != spec.labels:
                    findings.append(
                        self._finding(
                            ctx,
                            call,
                            name,
                            f"metric {name!r} registered with labels "
                            f"{labels!r} but declared with "
                            f"{spec.labels!r} in {REGISTRY_PATH}",
                        )
                    )

        # Stale registry entries: only meaningful when the metric's
        # owning module was actually part of this scan.
        for spec in metric_registry.METRICS:
            if spec.name in seen_names:
                continue
            ctx = project.by_module.get(spec.module)
            if ctx is None:
                continue
            findings.append(
                Finding(
                    code=self.meta.code,
                    severity=self.meta.severity,
                    path=str(ctx.path),
                    line=1,
                    col=0,
                    message=(
                        f"metric registry is stale: {spec.name!r} is "
                        f"declared for {spec.module} but no call site "
                        f"registers it; remove the MetricSpec from "
                        f"{REGISTRY_PATH} or restore the metric"
                    ),
                    module=ctx.module,
                    symbol=f"stale:{spec.name}",
                )
            )
        return findings

    def _finding(
        self, ctx: ModuleContext, call: ast.Call, name: str, message: str
    ) -> Finding:
        return Finding(
            code=self.meta.code,
            severity=self.meta.severity,
            path=str(ctx.path),
            line=call.lineno,
            col=call.col_offset,
            end_line=getattr(call, "end_lineno", 0) or call.lineno,
            message=message,
            module=ctx.module,
            symbol=name,
        )


def _registration_sites(tree: ast.Module) -> List[Tuple[ast.Call, str]]:
    """(call, kind) for every ``<obj>.counter/gauge/histogram(...)``."""
    sites: List[Tuple[ast.Call, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        kind = ""
        if isinstance(func, ast.Attribute) and func.attr in METRIC_KINDS:
            kind = func.attr
        elif isinstance(func, ast.Name) and func.id in METRIC_KINDS:
            kind = func.id
        if kind:
            sites.append((node, kind))
    sites.sort(key=lambda pair: (pair[0].lineno, pair[0].col_offset))
    return sites


def _constant_name(call: ast.Call) -> Optional[str]:
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _constant_labels(call: ast.Call) -> Optional[Tuple[str, ...]]:
    """The declared label names, or None when not statically known.

    Signature is ``counter(name, help="", labelnames=())``: labels are
    the third positional argument or the ``labelnames`` keyword; an
    absent argument means the metric is unlabelled (``()``).
    """
    expr: Optional[ast.expr] = None
    if len(call.args) >= 3:
        expr = call.args[2]
    for kw in call.keywords:
        if kw.arg == "labelnames":
            expr = kw.value
    if expr is None:
        return ()
    if isinstance(expr, (ast.Tuple, ast.List)):
        labels = []
        for elt in expr.elts:
            if not (
                isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ):
                return None
            labels.append(elt.value)
        return tuple(labels)
    return None
