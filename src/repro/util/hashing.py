"""Deterministic integer hashing used by the imprecise miss-count table.

The IMCT (Section 3.3) maps the large block-address space onto a
fixed-size table, so it needs a hash that (a) is stable across runs and
Python processes (unlike the builtin ``hash`` under PYTHONHASHSEED) and
(b) scrambles the low bits well, because block addresses are strongly
clustered (sequential I/O).  We use the SplitMix64 finalizer, a
well-studied 64-bit mixing function.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """Mix a 64-bit integer with the SplitMix64 finalizer.

    Returns a value in ``[0, 2**64)``.  Negative inputs are first reduced
    modulo 2**64 so the function is total over Python ints.
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def stable_bucket(value: int, buckets: int, salt: int = 0) -> int:
    """Map ``value`` onto ``[0, buckets)`` deterministically.

    ``salt`` lets independent tables (e.g. the IMCT and the offline log
    partitioner) use decorrelated mappings of the same address space.
    """
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    return mix64(value ^ mix64(salt)) % buckets
