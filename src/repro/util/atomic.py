"""Durable atomic file publication, shared by every on-disk writer.

``os.replace`` alone makes a write *atomic* (readers never see a partial
file) but not *durable*: if the process — or the machine — dies after
the rename while the temp file's data still sits in the page cache, the
destination name can point at a truncated or empty file after reboot.
The checkpoint writer learned this lesson first (fsync before replace);
the trace cache did not, and a crash could publish a corrupt ``.npz``
that only the corrupt-entry eviction path rescued.  This module is the
single implementation both of them — and the live serve store — share:

1. write everything into a temp sibling in the destination directory;
2. flush + ``fsync`` the temp file (data reaches the device);
3. ``os.replace`` onto the destination name (atomic);
4. ``fsync`` the destination *directory* (the rename itself is durable).

Two shapes are provided:

* :func:`atomic_write` — a context manager yielding an open binary
  handle, for writers that produce bytes directly;
* :func:`atomic_write_path` — a context manager yielding the temp
  *path*, for writers that insist on opening the file themselves
  (``numpy.savez``); the data fsync happens on a re-opened descriptor.

On any exception inside the ``with`` block the destination is left
untouched and the temp file is removed.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import BinaryIO, Iterator, Union


def fsync_directory(path: Union[str, Path]) -> None:
    """Flush a directory's entry table to disk (durable renames).

    Best-effort: platforms/filesystems that refuse to open or fsync a
    directory (Windows, some network mounts) are silently skipped — the
    rename is still atomic there, just not guaranteed durable.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: Union[str, Path]) -> Iterator[BinaryIO]:
    """Write ``path`` atomically and durably via an open binary handle.

    Yields a writable handle onto a temp sibling; on clean exit the data
    is fsynced, renamed over ``path``, and the parent directory is
    fsynced.  On an exception the temp file is removed and ``path`` is
    untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        _unlink_quietly(tmp_name)
        raise
    fsync_directory(path.parent)


@contextmanager
def atomic_write_path(path: Union[str, Path]) -> Iterator[Path]:
    """Like :func:`atomic_write`, but yields the temp *path* instead.

    For writers that open the file themselves (``numpy.savez``).  After
    the block returns, the temp file is fsynced via a fresh descriptor,
    renamed over ``path``, and the parent directory is fsynced.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    os.close(fd)
    try:
        yield Path(tmp_name)
        fd = os.open(tmp_name, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_name, path)
    except BaseException:
        _unlink_quietly(tmp_name)
        raise
    fsync_directory(path.parent)


def _unlink_quietly(name: str) -> None:
    try:
        os.unlink(name)
    except OSError:
        pass
