"""Shared low-level utilities: byte/block units, hashing, time intervals.

These helpers encode the two accounting granularities the paper uses
throughout its methodology (Section 4):

* **512-byte blocks** for all hit/miss/allocation counting, and
* **4-KB I/O units** for SSD IOPS costing (sub-4KB I/O is charged as a
  full 4-KB unit when assessing drive needs).
"""

from repro.util.units import (
    BLOCK_BYTES,
    IO_UNIT_BYTES,
    KIB,
    MIB,
    GIB,
    TIB,
    blocks_to_bytes,
    bytes_to_blocks,
    blocks_to_io_units,
    format_bytes,
)
from repro.util.hashing import mix64, stable_bucket
from repro.util.intervals import (
    SECONDS_PER_MINUTE,
    SECONDS_PER_HOUR,
    SECONDS_PER_DAY,
    minute_of,
    day_of,
    hour_of,
)

__all__ = [
    "BLOCK_BYTES",
    "IO_UNIT_BYTES",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "blocks_to_bytes",
    "bytes_to_blocks",
    "blocks_to_io_units",
    "format_bytes",
    "mix64",
    "stable_bucket",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "minute_of",
    "day_of",
    "hour_of",
]
