"""Byte, block, and I/O-unit conversions.

The paper counts storage accesses at two granularities:

* 512-byte **blocks** ("All other numbers count I/O blocks/accesses
  assuming 512-byte blocks for accuracy", Section 4), and
* 4-KB **I/O units** for drive-occupancy costing, because the Intel
  X25-E's IOPS ratings are specified for 4-KB transfers.  Sub-4KB I/O is
  conservatively charged as a full 4-KB unit.
"""

from __future__ import annotations

#: Size of one accounting block, in bytes (standard disk sector).
BLOCK_BYTES = 512

#: Size of one SSD I/O costing unit, in bytes.
IO_UNIT_BYTES = 4096

#: Number of 512-byte blocks in one 4-KB I/O unit.
BLOCKS_PER_IO_UNIT = IO_UNIT_BYTES // BLOCK_BYTES

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB


def blocks_to_bytes(blocks: int) -> int:
    """Convert a count of 512-byte blocks to bytes."""
    if blocks < 0:
        raise ValueError(f"block count must be non-negative, got {blocks}")
    return blocks * BLOCK_BYTES


def bytes_to_blocks(nbytes: int) -> int:
    """Convert bytes to 512-byte blocks, rounding up to whole blocks.

    Exact integer ceiling division: ``math.ceil(a / b)`` rounds the
    quotient through a float first, which is off by one for counts near
    and above 2**53 (e.g. ``2**53 + 1`` bytes is 2**44 + 1 blocks, but
    the float quotient collapses to exactly 2**44).
    """
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    return -(-nbytes // BLOCK_BYTES)


def blocks_to_io_units(blocks: int) -> int:
    """Convert 512-byte blocks to 4-KB I/O units, rounding up.

    This implements the paper's conservative costing rule: "we
    conservatively assessed the same cost for a sub-4KB I/O as that of a
    4KB I/O" (Section 4).  A request of 1..8 blocks costs one unit, 9..16
    blocks cost two units, and so on.  Integer ceiling division keeps
    the result exact for arbitrarily large block counts (see
    :func:`bytes_to_blocks`).
    """
    if blocks < 0:
        raise ValueError(f"block count must be non-negative, got {blocks}")
    return -(-blocks // BLOCKS_PER_IO_UNIT)


def format_bytes(nbytes: float) -> str:
    """Render a byte count with a human-readable binary suffix.

    >>> format_bytes(16 * GIB)
    '16.0 GiB'
    >>> format_bytes(1536)
    '1.5 KiB'
    """
    magnitude = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(magnitude) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(magnitude)} B"
            return f"{magnitude:.1f} {suffix}"
        magnitude /= 1024.0
    raise AssertionError("unreachable")
