"""Time-interval helpers.

All trace timestamps in this repository are **seconds since the start of
the trace** as floats.  The paper analyses the trace on a calendar-day
basis (Section 2) and costs SSD drive occupancy per minute (Section 4);
these helpers provide the corresponding bucketing.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400


def minute_of(timestamp: float) -> int:
    """Zero-based minute index of a trace timestamp."""
    if timestamp < 0:
        raise ValueError(f"timestamp must be non-negative, got {timestamp}")
    return int(timestamp // SECONDS_PER_MINUTE)


def hour_of(timestamp: float) -> int:
    """Zero-based hour index of a trace timestamp."""
    if timestamp < 0:
        raise ValueError(f"timestamp must be non-negative, got {timestamp}")
    return int(timestamp // SECONDS_PER_HOUR)


def day_of(timestamp: float) -> int:
    """Zero-based calendar-day index of a trace timestamp."""
    if timestamp < 0:
        raise ValueError(f"timestamp must be non-negative, got {timestamp}")
    return int(timestamp // SECONDS_PER_DAY)
