"""Time-interval helpers.

All trace timestamps in this repository are **seconds since the start of
the trace** as floats.  The paper analyses the trace on a calendar-day
basis (Section 2) and costs SSD drive occupancy per minute (Section 4);
these helpers provide the corresponding bucketing.

Precision contract: integer timestamps bucket **exactly** for any
magnitude — ``int`` inputs use pure integer floor division, so indices
stay correct past 2**53 where float arithmetic starts dropping
low-order seconds (``float(2**53 + 1) == float(2**53)``).  Float
timestamps keep the historical ``int(t // bucket)`` float semantics,
which the columnar fast path (:meth:`ColumnarTrace.issue_days`) mirrors
expression-for-expression; float inputs at or above 2**53 cannot
represent odd second counts in the first place, so callers bucketing
huge epoch-style timestamps should pass ints.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400

#: Quotients this close to an integer get Python-semantics
#: recomputation (see :func:`bucket_indices`).  Quotient magnitudes in
#: this repo are bounded by trace-days * buckets-per-day (a few
#: hundred), whose float64 ulp is ~1e-13, so a 1e-9 margin is orders of
#: magnitude beyond any possible rounding discrepancy while matching
#: essentially no interior points.
_BOUNDARY_MARGIN = 1e-9


def bucket_indices(times: np.ndarray, bucket_seconds: float) -> np.ndarray:
    """Bucket index of each float timestamp, with Python ``//`` semantics.

    The vectorized twin of mapping ``int(t // bucket_seconds)`` over
    ``times``: ``numpy.floor_divide`` may differ by one ulp from
    Python's float floor-division for timestamps within half an ulp of
    a bucket boundary, and the engines' equality guarantee depends on
    the columnar and object pipelines bucketing identically.  Rather
    than paying a per-element Python loop, the quotients are floored in
    one vectorized pass and only boundary-adjacent entries — where the
    two semantics could ever disagree — are recomputed with scalar
    Python arithmetic.
    """
    quotients = times / float(bucket_seconds)
    floored = np.floor(quotients).astype(np.int64)
    near = np.abs(quotients - np.rint(quotients)) < _BOUNDARY_MARGIN
    if bool(near.any()):
        for i in np.flatnonzero(near).tolist():
            floored[i] = int(float(times[i]) // bucket_seconds)
    return floored


def _bucket_of(timestamp: Union[int, float], bucket_seconds: int) -> int:
    if timestamp < 0:
        raise ValueError(f"timestamp must be non-negative, got {timestamp}")
    if isinstance(timestamp, int):
        # Exact for arbitrarily large timestamps (no float round-trip).
        return timestamp // bucket_seconds
    return int(timestamp // bucket_seconds)


def minute_of(timestamp: Union[int, float]) -> int:
    """Zero-based minute index of a trace timestamp."""
    return _bucket_of(timestamp, SECONDS_PER_MINUTE)


def hour_of(timestamp: Union[int, float]) -> int:
    """Zero-based hour index of a trace timestamp."""
    return _bucket_of(timestamp, SECONDS_PER_HOUR)


def day_of(timestamp: Union[int, float]) -> int:
    """Zero-based calendar-day index of a trace timestamp."""
    return _bucket_of(timestamp, SECONDS_PER_DAY)
