"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the library's main workflows without writing
Python:

* ``simulate``  — run one allocation configuration over a synthetic
  ensemble trace (or an MSR-Cambridge CSV) and print the per-day
  capture/allocation-write report;
* ``skew``      — the Figure-2 popularity analysis of a trace;
* ``drives``    — the Figures-8/9 drive-occupancy and coverage analysis
  for one configuration;
* ``table2``    — print the paper's Table 2 for a given hit rate and
  read fraction.

All commands are deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_table
from repro.analysis.skew import access_count_quantiles
from repro.analysis.tables import table2_rows
from repro.sim import context_for_trace, run_policy
from repro.sim.experiment import FIGURE5_POLICIES, run_policy_suite
from repro.ssd.device import INTEL_X25E
from repro.ssd.occupancy import coverage_table, occupancy_from_stats
from repro.traces import (
    SyntheticTraceConfig,
    read_msr_csv,
)
from repro.traces.store import load_or_generate_columnar
from repro.traces.streams import daily_block_counts


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float (clean exit-2 otherwise)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"must be > 0, got {text}"
        )
    return value


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (clean exit-2 otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _nonnegative_float(text: str) -> float:
    """argparse type: a float >= 0 (clean exit-2 otherwise)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0 (clean exit-2 otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SieveStore (ISCA 2010) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_options(p):
        p.add_argument(
            "--scale", type=float, default=2e-5,
            help="linear workload scale for the synthetic trace",
        )
        p.add_argument("--days", type=int, default=8)
        p.add_argument("--seed", type=int, default=20100619)
        p.add_argument(
            "--msr-csv", metavar="FILE", default=None,
            help="replay an MSR-Cambridge CSV instead of synthesizing",
        )
        p.add_argument(
            "--no-trace-cache", action="store_true",
            help="regenerate the synthetic trace instead of using the "
            "on-disk trace cache (see SIEVESTORE_TRACE_CACHE)",
        )

    sim = sub.add_parser("simulate", help="run cache configurations")
    add_trace_options(sim)
    sim.add_argument(
        "--policy", choices=sorted(FIGURE5_POLICIES),
        action="append", dest="policies", metavar="POLICY",
        help="configuration to simulate; repeat for several "
        "(default: sievestore-c)",
    )
    sim.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the policies across N worker processes sharing one "
        "serialized columnar trace (0 = all cores)",
    )
    sim.add_argument(
        "--fast", action="store_true",
        help="use the columnar fast simulation path (bit-identical "
        "statistics, several times faster)",
    )
    sim.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the result (stats + policy name) as JSON; "
        "with several policies, FILE gains a per-policy suffix",
    )
    sim.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="write the run manifest as JSON: per-policy engine used, "
        "wall seconds, retries, worker pid, and outcome",
    )
    sim.add_argument(
        "--task-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="per-policy task timeout for --jobs runs (one retry, then "
        "a structured failure record; default: wait forever)",
    )
    sim.add_argument(
        "--epoch-seconds", type=_positive_float, default=None,
        metavar="SECONDS",
        help="epoch length for the discrete policies (default: one day)",
    )
    sim.add_argument(
        "--fault-plan", metavar="FILE", default=None,
        help="inject device faults from a JSON fault plan "
        "(see repro.faults.FaultPlan)",
    )
    sim.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="periodically write a crash-consistent checkpoint of the "
        "simulation state (single policy, --jobs 1 only)",
    )
    sim.add_argument(
        "--checkpoint-every", type=_positive_int, default=None,
        metavar="N",
        help="requests between checkpoints (default: 100000)",
    )
    sim.add_argument(
        "--resume", metavar="FILE", default=None,
        help="resume a checkpointed run to completion (the trace is "
        "regenerated from the checkpoint's stored trace arguments; "
        "other trace/policy options are ignored)",
    )
    sim.add_argument(
        "--resume-engine", choices=("fast", "object"), default=None,
        help="resume on a different engine than the one that wrote the "
        "checkpoint (fast<->object conversion; final statistics stay "
        "bit-identical)",
    )
    sim.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="collect run telemetry and write it at exit: Prometheus "
        "text exposition for .prom/.txt suffixes, JSON otherwise",
    )
    sim.add_argument(
        "--events-out", metavar="FILE", default=None,
        help="append run/checkpoint/health telemetry events to a "
        "JSON-lines log (resumed runs append to the same log)",
    )
    sim.add_argument(
        "--progress", type=_positive_float, default=None,
        metavar="SECONDS",
        help="print a progress heartbeat to stderr at least this many "
        "seconds apart (day, blocks/sec, ETA; parallel --jobs runs "
        "report one line per finished task instead)",
    )
    sim.add_argument(
        "--segments", action="store_true",
        help="stream the synthetic trace out-of-core from an on-disk "
        "segment store (bounded memory; single --policy, --jobs 1)",
    )
    sim.add_argument(
        "--segments-dir", metavar="DIR", default=None,
        help="segment-store directory (implies --segments; default: "
        "the trace cache keyed by the trace config)",
    )
    sim.add_argument(
        "--rows-per-segment", type=_positive_int, default=None,
        metavar="N",
        help="row cap per segment file when generating the store",
    )
    sim.add_argument(
        "--chunk-rows", type=_positive_int, default=None, metavar="N",
        help="row budget per streamed chunk for --segments runs "
        "(default: 262144; chunks never span segments)",
    )

    shard = sub.add_parser(
        "shard-replay",
        help="one policy, the trace partitioned across shard workers",
        description=(
            "Partition the ensemble by server id into closed shards, "
            "replay one policy over every shard in parallel worker "
            "processes that stream segment files from disk (the parent "
            "never pickles trace rows), and merge the per-shard "
            "statistics.  Each shard models an independent appliance "
            "provisioned at scale/shards; --shards 1 is bit-identical "
            "to an unsharded simulate run.  Exits 1 when any shard "
            "fails after its retry."
        ),
    )
    add_trace_options(shard)
    shard.add_argument(
        "--policy", choices=sorted(FIGURE5_POLICIES), default="sievestore-c",
        help="configuration replayed on every shard "
        "(default: sievestore-c)",
    )
    shard.add_argument(
        "--shards", type=_positive_int, default=4, metavar="N",
        help="number of server-disjoint trace partitions (default: 4)",
    )
    shard.add_argument(
        "--jobs", type=_nonnegative_int, default=0, metavar="N",
        help="worker processes (0 = all cores; 1 = serial in-process, "
        "byte-identical to the pooled run)",
    )
    shard.add_argument(
        "--chunk-rows", type=_positive_int, default=None, metavar="N",
        help="row budget per streamed chunk (default: 262144)",
    )
    shard.add_argument(
        "--segments-dir", metavar="DIR", default=None,
        help="segment-store directory (default: the trace cache keyed "
        "by the trace config)",
    )
    shard.add_argument(
        "--rows-per-segment", type=_positive_int, default=None,
        metavar="N",
        help="row cap per segment file when generating the store",
    )
    shard.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="write per-shard crash-consistent checkpoints to "
        "DIR/shard-N.ckpt; a retried or rerun shard resumes from its "
        "checkpoint instead of starting over",
    )
    shard.add_argument(
        "--checkpoint-every", type=_positive_int, default=None,
        metavar="N",
        help="requests between checkpoints (default: 100000; a "
        "checkpoint also lands after every streamed chunk)",
    )
    shard.add_argument(
        "--task-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="per-shard timeout (one retry, then a structured failure "
        "record; default: wait forever)",
    )
    shard.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="write the sharded-replay manifest as JSON: per-shard "
        "engine, wall seconds, retries, worker pid, and outcome",
    )
    shard.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the merged statistics as JSON",
    )
    shard.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="collect run telemetry and write it at exit: Prometheus "
        "text exposition for .prom/.txt suffixes, JSON otherwise",
    )
    shard.add_argument(
        "--progress", action="store_true",
        help="print one progress line per finished shard to stderr",
    )

    skew = sub.add_parser("skew", help="Figure-2 popularity analysis")
    add_trace_options(skew)

    summarize = sub.add_parser(
        "summarize", help="traffic inventory of a trace (Table-1 style)"
    )
    add_trace_options(summarize)

    validate = sub.add_parser(
        "validate",
        help="check a trace against the paper's O1/O2 statistics",
    )
    add_trace_options(validate)

    drives = sub.add_parser("drives", help="drive occupancy / coverage")
    add_trace_options(drives)
    drives.add_argument(
        "--policy", choices=sorted(FIGURE5_POLICIES), default="sievestore-c"
    )
    drives.add_argument(
        "--window-minutes", type=int, default=30,
        help="occupancy aggregation window (widen for small scales)",
    )

    serve = sub.add_parser(
        "serve-bench",
        help="live disk-backed serving bench (repro.serve)",
        description=(
            "Replay a trace through N concurrent client processes "
            "against one shared sqlite+file byte store, admission gated "
            "by the continuous sieve, and report per-operation "
            "median/p90/p99/max latency plus allocation-write savings "
            "against an unsieved baseline pass.  Exits 1 when the "
            "baseline pass runs and the sieve fails to keep allocation "
            "writes strictly below it."
        ),
    )
    add_trace_options(serve)
    serve.add_argument(
        "--clients", type=_positive_int, default=4, metavar="N",
        help="concurrent client processes replaying address-hashed "
        "trace shards (default: 4)",
    )
    from repro.core.admission import GATE_KINDS

    serve.add_argument(
        "--gate", choices=sorted(GATE_KINDS), default="sieve",
        help="admission gate for the measured pass (default: sieve)",
    )
    serve.add_argument(
        "--miss-latency", type=_nonnegative_float, default=0.0005,
        metavar="SECONDS",
        help="simulated ensemble access penalty per backend operation "
        "(default: 0.5ms)",
    )
    serve.add_argument(
        "--payload-bytes", type=_positive_int, default=4096,
        metavar="BYTES", help="value size served per address",
    )
    serve.add_argument(
        "--store-shards", type=_positive_int, default=8, metavar="N",
        help="sqlite shard fanout of the byte store",
    )
    serve.add_argument(
        "--t1", type=_nonnegative_int, default=None,
        help="sieve IMCT promotion threshold (default: the paper's 9)",
    )
    serve.add_argument(
        "--t2", type=_nonnegative_int, default=None,
        help="sieve MCT admission threshold (default: the paper's 4)",
    )
    serve.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="working directory for stores and trace shards (kept "
        "afterwards; default: a temporary directory, removed at exit)",
    )
    serve.add_argument(
        "--no-baseline", action="store_true",
        help="skip the unsieved comparison pass (no savings report)",
    )
    serve.add_argument(
        "--serial", action="store_true",
        help="run the clients in-process instead of a process pool",
    )
    serve.add_argument(
        "--fault-plan", metavar="FILE", default=None,
        help="inject device faults from a JSON fault plan; health is "
        "evaluated at trace issue times, so transitions land "
        "deterministically mid-replay",
    )
    serve.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the report (latency, stats, savings) as JSON",
    )
    serve.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="write per-client execution records as JSON",
    )
    serve.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="collect serve telemetry across all clients and write it "
        "at exit (Prometheus text for .prom/.txt, JSON otherwise)",
    )

    table2 = sub.add_parser("table2", help="print the paper's Table 2")
    table2.add_argument("--hit-rate", type=float, default=0.35)
    table2.add_argument("--read-fraction", type=float, default=0.75)

    check = sub.add_parser(
        "check",
        help="run the sievelint static invariant checker",
        description=(
            "AST-based invariant checker (sievelint): determinism, "
            "worker-safety, and zero-overhead contracts."
        ),
    )
    from repro.staticcheck.cli import configure_parser as _configure_check

    _configure_check(check)
    return parser


def _load_trace(args):
    """Returns ``(object_trace, days, columnar_or_None)``.

    Synthetic traces go through the on-disk trace cache (columnar
    ``.npz`` keyed by a config content hash) unless ``--no-trace-cache``
    or the ``SIEVESTORE_TRACE_CACHE`` environment variable disables it.
    """
    if args.msr_csv:
        trace = read_msr_csv(args.msr_csv)
        return trace, args.days, None
    config = SyntheticTraceConfig(
        scale=args.scale, days=args.days, seed=args.seed
    )
    if args.no_trace_cache:
        from repro.traces.synthetic import EnsembleTraceGenerator

        columns = EnsembleTraceGenerator(config).generate_columnar()
    else:
        columns = load_or_generate_columnar(config)
    return columns.to_trace(), config.days, columns


def _print_simulation_report(name: str, result, requests: int) -> None:
    rows = [
        [day, d.accesses, round(d.hit_ratio, 3), d.allocation_writes]
        for day, d in enumerate(result.stats.per_day)
    ]
    total = result.stats.total
    rows.append(
        ["all", total.accesses, round(total.hit_ratio, 3),
         total.allocation_writes]
    )
    print(render_table(
        ["day", "block accesses", "capture", "allocation-writes"],
        rows,
        title=f"{name} over {requests:,} requests",
    ))
    blocks_per_sec = (
        total.accesses / result.wall_seconds if result.wall_seconds > 0 else 0.0
    )
    print(
        f"simulated in {result.wall_seconds:.2f}s "
        f"({blocks_per_sec:,.0f} blocks/sec)"
    )
    stats = result.stats
    if (stats.degraded_seconds or stats.bypass_seconds
            or total.read_errors or total.write_errors):
        print(
            f"device health: degraded {stats.degraded_seconds:,.0f}s, "
            f"bypass {stats.bypass_seconds:,.0f}s, "
            f"read errors {total.read_errors:,}, "
            f"write errors {total.write_errors:,}, "
            f"bypassed accesses {total.bypass_accesses:,}"
        )
    print()


def _print_outcome_table(results) -> None:
    """Per-policy outcome summary from the run manifest."""
    rows = [
        [
            task["policy"],
            task["outcome"],
            task["engine"] or "-",
            round(task["wall_seconds"], 2),
            task["retries"],
            task["executor"],
        ]
        for task in results.manifest["tasks"]
    ]
    print(render_table(
        ["policy", "outcome", "engine", "wall s", "retries", "executor"],
        rows,
        title="Suite outcomes"
        + (" (worker pool broke; serial fallback used)"
           if results.manifest["pool_broken"] else ""),
    ))
    print()


def _artifact_path_problem(flag: str, path: str) -> Optional[str]:
    """Why ``path`` cannot receive an output file, or ``None`` if it can."""
    import os

    if os.path.isdir(path):
        return f"{flag} path {path} is a directory, not a file"
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        return f"{flag} directory {parent} does not exist"
    if not os.access(parent, os.W_OK):
        return f"{flag} directory {parent} is not writable"
    return None


def _validate_simulate_flags(args) -> Optional[int]:
    """Reject invalid flag combinations up front (exit 2), instead of
    silently ignoring them or tracebacking after a long run."""
    if args.checkpoint_every is not None and not args.checkpoint:
        print(
            "error: --checkpoint-every requires --checkpoint (a resumed "
            "run keeps the cadence stored in its checkpoint)",
            file=sys.stderr,
        )
        return 2
    segmented = args.segments or args.segments_dir is not None
    if not segmented:
        for flag, value in (
            ("--chunk-rows", args.chunk_rows),
            ("--rows-per-segment", args.rows_per_segment),
        ):
            if value is not None:
                print(
                    f"error: {flag} requires --segments (or "
                    "--segments-dir)",
                    file=sys.stderr,
                )
                return 2
    elif not args.resume:
        if args.msr_csv:
            print(
                "error: --segments streams a synthetic trace from a "
                "segment store; it cannot be combined with --msr-csv",
                file=sys.stderr,
            )
            return 2
        if args.jobs != 1:
            print(
                "error: --segments requires --jobs 1 (use the "
                "shard-replay command for parallel out-of-core replay)",
                file=sys.stderr,
            )
            return 2
        if args.policies and len(dict.fromkeys(args.policies)) > 1:
            print(
                "error: --segments runs a single --policy per "
                "invocation",
                file=sys.stderr,
            )
            return 2
    for flag, path in (
        ("--metrics-out", args.metrics_out),
        ("--events-out", args.events_out),
    ):
        if not path:
            continue
        problem = _artifact_path_problem(flag, path)
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    return None


#: Requests between progress-hook invocations; the heartbeat throttles
#: itself by wall time, so this only bounds check frequency.
_PROGRESS_CHECK_EVERY = 1000


def _make_heartbeat(
    interval: float,
    total_requests: int,
    total_blocks: int,
    days: int,
    epoch_seconds: float,
):
    """Per-request heartbeat: day, blocks/sec, and ETA to stderr."""
    import time as _time_mod

    start = _time_mod.perf_counter()
    state = {"last": start}

    def hook(requests_done: int, current_epoch: int) -> None:
        now = _time_mod.perf_counter()
        if now - state["last"] < interval:
            return
        state["last"] = now
        elapsed = now - start
        fraction = requests_done / total_requests if total_requests else 1.0
        blocks_done = int(total_blocks * fraction)
        rate = blocks_done / elapsed if elapsed > 0 else 0.0
        eta = (
            (1.0 - fraction) * elapsed / fraction if fraction > 0 else 0.0
        )
        day = int(max(current_epoch, 0) * epoch_seconds // 86400)
        print(
            f"[progress] day {min(day, days - 1) + 1}/{days}  "
            f"{requests_done:,}/{total_requests:,} requests  "
            f"{rate:,.0f} blocks/sec  eta {eta:,.0f}s",
            file=sys.stderr,
            flush=True,
        )

    return hook


def _make_task_progress(total_tasks: int):
    """Per-task progress reporter for suite runs."""
    done = {"count": 0}

    def on_task_done(record) -> None:
        done["count"] += 1
        print(
            f"[progress] {record.policy}: {record.outcome} "
            f"({done['count']}/{total_tasks} tasks, "
            f"{record.wall_seconds:.1f}s, "
            f"engine {record.engine or '-'})",
            file=sys.stderr,
            flush=True,
        )

    return on_task_done


def _total_blocks(trace, columns) -> int:
    """Block-access count of a trace, vectorized when columns exist."""
    if columns is not None:
        return int(columns.block_count.sum())
    return sum(request.block_count for request in trace.requests)


def _write_metrics(path: Optional[str]) -> None:
    """Export the active registry to ``path`` (format by suffix)."""
    if not path:
        return
    from repro.obs import runtime as obs_runtime
    from repro.obs.export import to_json, to_prometheus

    registry = obs_runtime.get_registry()
    if registry is None:  # pragma: no cover - guarded by the caller
        return
    snapshot = registry.snapshot()
    if path.endswith((".prom", ".txt")):
        text = to_prometheus(snapshot)
    else:
        text = to_json(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"metrics written to {path}")


def _load_fault_plan(args):
    """Returns ``(plan_or_None, exit_code_or_None)``."""
    if not args.fault_plan:
        return None, None
    from repro.faults import FaultPlan

    try:
        return FaultPlan.load_json(args.fault_plan), None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(
            f"error: cannot load fault plan {args.fault_plan}: {exc}",
            file=sys.stderr,
        )
        return None, 2


def _save_result_json(result, path: str) -> None:
    from repro.sim.serialize import save_result

    save_result(result, path)
    print(f"result written to {path}")


def _segment_store_for(args):
    """Open/generate the config's segment store; ``(store, exit_code)``."""
    from repro.traces.store import load_or_generate_segments

    if args.no_trace_cache and args.segments_dir is None:
        print(
            "error: segment stores live on disk; pass --segments-dir "
            "when the trace cache is disabled (--no-trace-cache)",
            file=sys.stderr,
        )
        return None, 2
    config = SyntheticTraceConfig(
        scale=args.scale, days=args.days, seed=args.seed
    )
    try:
        store = load_or_generate_segments(
            config,
            directory=args.segments_dir,
            rows_per_segment=args.rows_per_segment,
        )
    except (ValueError, OSError) as exc:
        print(f"error: cannot open segment store: {exc}", file=sys.stderr)
        return None, 2
    return store, None


def _streamed_total_blocks(store, chunk_rows) -> int:
    """Block-access count of a segment store, one bounded chunk at a time."""
    return sum(
        int(columns.block_count.sum())
        for _base, columns in store.iter_chunks(chunk_rows)
    )


def _cmd_resume(args) -> int:
    """``simulate --resume``: finish a checkpointed run."""
    import os

    from repro.sim.serialize import CheckpointError, load_checkpoint

    if not os.path.exists(args.resume):
        print(
            f"error: --resume path {args.resume} does not exist",
            file=sys.stderr,
        )
        return 2
    from repro.sim import resume_simulation

    try:
        payload = load_checkpoint(args.resume)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    context = payload.get("context") or {}
    trace_args = context.get("trace")
    if trace_args is None:
        print(
            "error: checkpoint carries no trace context; resume via "
            "repro.sim.resume_simulation with the original trace",
            file=sys.stderr,
        )
        return 2
    chunk_rows = trace_args.pop("chunk_rows", None)
    if trace_args.pop("segments", False):
        # The checkpointed run streamed a segment store; resume does too.
        store, code = _segment_store_for(argparse.Namespace(**trace_args))
        if code is not None:
            return code
        trace = columns = None
        resume_trace = store
        n_requests = len(store)
    else:
        trace, _days, columns = _load_trace(argparse.Namespace(**trace_args))
        resume_trace = columns if columns is not None else trace
        n_requests = len(trace)
    progress_every = progress_hook = None
    if args.progress is not None:
        config = payload["config"]
        progress_every = _PROGRESS_CHECK_EVERY
        progress_hook = _make_heartbeat(
            args.progress,
            total_requests=n_requests,
            total_blocks=(
                _streamed_total_blocks(resume_trace, chunk_rows)
                if trace is None
                else _total_blocks(trace, columns)
            ),
            days=config["days"],
            epoch_seconds=config["epoch_seconds"],
        )
    try:
        result = resume_simulation(
            args.resume,
            resume_trace,
            checkpoint_path=args.checkpoint,
            progress_every=progress_every,
            progress_hook=progress_hook,
            engine=args.resume_engine,
            chunk_rows=chunk_rows,
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_simulation_report(result.policy_name, result, n_requests)
    if args.json:
        _save_result_json(result, args.json)
    return 0


def _cmd_checkpointed_simulate(args, ctx, name, fault_plan, requests) -> int:
    """``simulate --checkpoint``: single-policy run with checkpointing."""
    context = {
        "trace": {
            "msr_csv": args.msr_csv,
            "scale": args.scale,
            "days": args.days,
            "seed": args.seed,
            "no_trace_cache": args.no_trace_cache,
        },
        "policy": name,
        "fault_plan": fault_plan.to_dict() if fault_plan is not None else None,
    }
    progress_every = progress_hook = None
    if args.progress is not None:
        progress_every = _PROGRESS_CHECK_EVERY
        progress_hook = _make_heartbeat(
            args.progress,
            total_requests=requests,
            total_blocks=_total_blocks(None, ctx.columnar_trace()),
            days=ctx.days,
            epoch_seconds=args.epoch_seconds or 86400.0,
        )
    result = run_policy(
        name, ctx, track_minutes=False, fast_path=args.fast,
        fault_plan=fault_plan, epoch_seconds=args.epoch_seconds,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        checkpoint_context=context,
        progress_every=progress_every,
        progress_hook=progress_hook,
    )
    _print_simulation_report(name, result, requests)
    if args.json:
        _save_result_json(result, args.json)
    return 0


def _cmd_simulate(args) -> int:
    """Validate flags, switch observability, dispatch the simulate run."""
    code = _validate_simulate_flags(args)
    if code is not None:
        return code
    if not (args.metrics_out or args.events_out):
        return _run_simulate(args)
    from repro.obs import runtime as obs_runtime

    obs_runtime.enable(events_path=args.events_out)
    try:
        code = _run_simulate(args)
        _write_metrics(args.metrics_out)
        return code
    finally:
        obs_runtime.disable()


def _cmd_simulate_segments(args, fault_plan) -> int:
    """``simulate --segments``: stream one policy out-of-core."""
    from repro.sim.engine import simulate
    from repro.sim.experiment import ExperimentContext, build_policy

    store, code = _segment_store_for(args)
    if code is not None:
        return code
    name = (args.policies or ["sievestore-c"])[0]
    ctx = ExperimentContext(
        trace=store,
        days=args.days,
        scale=args.scale,
        daily_counts=store.daily_block_counts(
            args.days, chunk_rows=args.chunk_rows
        ),
        seed=0,
    )
    policy, capacity = build_policy(name, ctx)
    checkpoint_context = None
    if args.checkpoint:
        checkpoint_context = {
            "trace": {
                "msr_csv": args.msr_csv,
                "scale": args.scale,
                "days": args.days,
                "seed": args.seed,
                "no_trace_cache": args.no_trace_cache,
                "segments": True,
                "segments_dir": args.segments_dir,
                "rows_per_segment": args.rows_per_segment,
                "chunk_rows": args.chunk_rows,
            },
            "policy": name,
            "fault_plan": (
                fault_plan.to_dict() if fault_plan is not None else None
            ),
        }
    progress_every = progress_hook = None
    if args.progress is not None:
        progress_every = _PROGRESS_CHECK_EVERY
        progress_hook = _make_heartbeat(
            args.progress,
            total_requests=len(store),
            total_blocks=_streamed_total_blocks(store, args.chunk_rows),
            days=args.days,
            epoch_seconds=args.epoch_seconds or 86400.0,
        )
    extra = {}
    if args.epoch_seconds is not None:
        extra["epoch_seconds"] = args.epoch_seconds
    result = simulate(
        store,
        policy,
        capacity_blocks=capacity,
        days=args.days,
        track_minutes=False,
        fast_path=args.fast,
        fault_plan=fault_plan,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        checkpoint_context=checkpoint_context,
        label=name,
        chunk_rows=args.chunk_rows,
        progress_every=progress_every,
        progress_hook=progress_hook,
        **extra,
    )
    result.policy_name = name
    _print_simulation_report(name, result, len(store))
    if args.json:
        _save_result_json(result, args.json)
    return 0


def _run_simulate(args) -> int:
    if args.resume:
        return _cmd_resume(args)
    fault_plan, code = _load_fault_plan(args)
    if code is not None:
        return code
    if args.segments or args.segments_dir is not None:
        return _cmd_simulate_segments(args, fault_plan)
    trace, days, columns = _load_trace(args)
    names = list(dict.fromkeys(args.policies or ["sievestore-c"]))
    ctx = context_for_trace(
        trace, days=days, scale=args.scale, columnar=columns
    )
    if args.checkpoint:
        if len(names) != 1 or args.jobs != 1:
            print(
                "error: --checkpoint requires a single --policy and "
                "--jobs 1",
                file=sys.stderr,
            )
            return 2
        return _cmd_checkpointed_simulate(
            args, ctx, names[0], fault_plan, len(trace)
        )
    jobs = None if args.jobs == 0 else args.jobs
    on_task_done = progress_every = progress_hook = None
    if args.progress is not None:
        on_task_done = _make_task_progress(len(names))
        if jobs == 1:
            progress_every = _PROGRESS_CHECK_EVERY
            progress_hook = _make_heartbeat(
                args.progress,
                total_requests=len(trace),
                total_blocks=_total_blocks(trace, columns),
                days=days,
                epoch_seconds=args.epoch_seconds or 86400.0,
            )
    results = run_policy_suite(
        ctx, names, track_minutes=False, fast_path=args.fast, jobs=jobs,
        task_timeout=args.task_timeout,
        fault_plan=fault_plan, epoch_seconds=args.epoch_seconds,
        on_task_done=on_task_done,
        progress_every=progress_every, progress_hook=progress_hook,
    )
    for name in names:
        if name in results:
            _print_simulation_report(name, results[name], len(trace))
    if jobs != 1 or results.failures:
        _print_outcome_table(results)
    for failure in results.failures.values():
        print(f"FAILED {failure}", file=sys.stderr)
    if args.manifest:
        try:
            results.save_manifest(args.manifest)
        except OSError as exc:
            # The reports above already printed; don't trade them for
            # a traceback over an unwritable path.
            print(f"error: cannot write manifest {args.manifest}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"run manifest written to {args.manifest}")
    if args.json:
        from repro.sim.serialize import save_result

        completed = [name for name in names if name in results]
        if len(names) == 1 and completed:
            save_result(results[names[0]], args.json)
            print(f"result written to {args.json}")
        elif len(names) > 1:
            import os

            root, ext = os.path.splitext(args.json)
            for name in completed:
                path = f"{root}-{name}{ext or '.json'}"
                save_result(results[name], path)
                print(f"result written to {path}")
    return 1 if results.failures else 0


def _validate_shard_replay_flags(args) -> Optional[int]:
    """Reject invalid shard-replay flag combinations up front (exit 2)."""
    if args.msr_csv:
        print(
            "error: shard-replay streams a synthetic trace from a "
            "segment store; it cannot replay --msr-csv",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_every is not None and not args.checkpoint_dir:
        print(
            "error: --checkpoint-every requires --checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    for flag, path in (
        ("--manifest", args.manifest),
        ("--json", args.json),
        ("--metrics-out", args.metrics_out),
    ):
        if not path:
            continue
        problem = _artifact_path_problem(flag, path)
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    return None


def _cmd_shard_replay(args) -> int:
    """Validate flags, switch observability, dispatch the sharded replay."""
    code = _validate_shard_replay_flags(args)
    if code is not None:
        return code
    if not args.metrics_out:
        return _run_shard_replay_cmd(args)
    from repro.obs import runtime as obs_runtime

    obs_runtime.enable()
    try:
        code = _run_shard_replay_cmd(args)
        _write_metrics(args.metrics_out)
        return code
    finally:
        obs_runtime.disable()


def _run_shard_replay_cmd(args) -> int:
    import json as json_module

    from repro.sim.parallel import run_sharded_replay
    from repro.sim.serialize import stats_to_dict

    store, code = _segment_store_for(args)
    if code is not None:
        return code
    if args.checkpoint_dir:
        import os

        os.makedirs(args.checkpoint_dir, exist_ok=True)
    on_task_done = (
        _make_task_progress(args.shards) if args.progress else None
    )
    run = run_sharded_replay(
        store,
        args.policy,
        days=args.days,
        scale=args.scale,
        shards=args.shards,
        jobs=None if args.jobs == 0 else args.jobs,
        track_minutes=False,
        chunk_rows=args.chunk_rows,
        task_timeout=args.task_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        on_task_done=on_task_done,
    )
    if run.stats is not None:
        rows = [
            [day, d.accesses, round(d.hit_ratio, 3), d.allocation_writes]
            for day, d in enumerate(run.stats.per_day)
        ]
        total = run.stats.total
        rows.append(
            ["all", total.accesses, round(total.hit_ratio, 3),
             total.allocation_writes]
        )
        print(render_table(
            ["day", "block accesses", "capture", "allocation-writes"],
            rows,
            title=f"{args.policy} merged over {args.shards} shards "
            f"({len(store):,} requests)",
        ))
        print()
    _print_outcome_table(run)
    for failure in run.failures.values():
        print(f"FAILED {failure}", file=sys.stderr)
    if args.manifest:
        try:
            run.save_manifest(args.manifest)
        except OSError as exc:
            print(f"error: cannot write manifest {args.manifest}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"run manifest written to {args.manifest}")
    if args.json and run.stats is not None:
        payload = {
            "policy": args.policy,
            "shards": args.shards,
            "stats": stats_to_dict(run.stats),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"merged stats written to {args.json}")
    return 0 if run.ok else 1


def _validate_serve_bench_flags(args) -> Optional[int]:
    """Reject invalid serve-bench flag combinations up front (exit 2)."""
    if args.gate == "unsieved" and not args.no_baseline:
        print(
            "error: --gate unsieved duplicates the baseline pass; "
            "add --no-baseline",
            file=sys.stderr,
        )
        return 2
    for flag, path in (
        ("--json", args.json),
        ("--manifest", args.manifest),
        ("--metrics-out", args.metrics_out),
    ):
        if not path:
            continue
        problem = _artifact_path_problem(flag, path)
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    return None


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}ms"


def _print_latency_table(report) -> None:
    print(
        f"  {'op':<6} {'count':>8} {'median':>11} {'p90':>11} "
        f"{'p99':>11} {'max':>11}"
    )
    for op in sorted(report.latency):
        summary = report.latency[op]
        if summary is None:
            print(f"  {op:<6} {0:>8} {'-':>11} {'-':>11} {'-':>11} {'-':>11}")
            continue
        print(
            f"  {op:<6} {summary.count:>8} {_format_ms(summary.median):>11} "
            f"{_format_ms(summary.p90):>11} {_format_ms(summary.p99):>11} "
            f"{_format_ms(summary.max):>11}"
        )


def _print_serve_stats(stats) -> None:
    print(
        f"  hits={stats.hits} misses={stats.misses} "
        f"bypassed={stats.bypassed} read_faults={stats.read_faults} "
        f"write_faults={stats.write_faults}"
    )
    if stats.health_transitions:
        transitions = ", ".join(
            f"{key} x{count}"
            for key, count in sorted(stats.health_transitions.items())
        )
        print(f"  health transitions: {transitions}")


def _cmd_serve_bench(args) -> int:
    """Validate flags, switch observability, dispatch the serve bench."""
    code = _validate_serve_bench_flags(args)
    if code is not None:
        return code
    if not args.metrics_out:
        return _run_serve_bench_cmd(args, collect_metrics=False)
    from repro.obs import runtime as obs_runtime

    obs_runtime.enable()
    try:
        code = _run_serve_bench_cmd(args, collect_metrics=True)
        _write_metrics(args.metrics_out)
        return code
    finally:
        obs_runtime.disable()


def _run_serve_bench_cmd(args, collect_metrics: bool) -> int:
    import contextlib
    import json as json_module
    import tempfile
    from pathlib import Path

    from repro.serve import BenchOptions, run_serve_bench, run_sieve_comparison
    from repro.traces.columnar import as_columnar

    fault_plan, code = _load_fault_plan(args)
    if code is not None:
        return code
    trace, _days, columns = _load_trace(args)
    if columns is None:
        columns = as_columnar(trace)
    options = BenchOptions(
        gate_kind=args.gate,
        miss_latency=args.miss_latency,
        payload_bytes=args.payload_bytes,
        store_shards=args.store_shards,
        seed=args.seed,
        t1=args.t1,
        t2=args.t2,
        fault_plan=fault_plan.to_dict() if fault_plan is not None else None,
        collect_metrics=collect_metrics,
    )
    with contextlib.ExitStack() as stack:
        if args.store_dir:
            base = Path(args.store_dir)
            base.mkdir(parents=True, exist_ok=True)
        else:
            base = Path(
                stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="serve-bench-")
                )
            )
        if args.no_baseline:
            comparison = None
            report = run_serve_bench(
                columns, base / "store", base / "shards",
                clients=args.clients, options=options,
                parallel=not args.serial,
            )
        else:
            comparison = run_sieve_comparison(
                columns, base, clients=args.clients, options=options,
                parallel=not args.serial,
            )
            report = comparison["sieved"]

    print(
        f"serve-bench: gate={report.gate_kind} clients={report.clients} "
        f"requests={report.requests} wall={report.wall_seconds:.2f}s"
    )
    _print_latency_table(report)
    _print_serve_stats(report.stats)
    code = 0
    if comparison is None:
        print(f"  allocation writes: {report.allocation_writes}")
    else:
        baseline = comparison["unsieved"]
        saved = comparison["allocation_writes_saved"]
        ratio = comparison["allocation_write_ratio"]
        percent = f" ({(1 - ratio) * 100:.1f}% fewer)" if ratio is not None else ""
        print(
            f"  allocation writes: sieved={report.allocation_writes} "
            f"baseline={baseline.allocation_writes} saved={saved}{percent}"
        )
        if saved <= 0:
            print(
                "error: sieved pass did not keep allocation writes below "
                "the unsieved baseline",
                file=sys.stderr,
            )
            code = 1

    if args.json:
        payload = report.to_dict()
        if comparison is not None:
            payload = {
                "sieved": report.to_dict(),
                "baseline": comparison["unsieved"].to_dict(),
                "allocation_writes_saved": comparison["allocation_writes_saved"],
                "allocation_write_ratio": comparison["allocation_write_ratio"],
            }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.json}")
    if args.manifest:
        manifest = report.manifest()
        if comparison is not None:
            manifest = {
                "version": manifest["version"],
                "kind": "serve-bench-comparison",
                "sieved": report.manifest(),
                "baseline": comparison["unsieved"].manifest(),
            }
        with open(args.manifest, "w", encoding="utf-8") as handle:
            json_module.dump(manifest, handle, indent=2)
            handle.write("\n")
        print(f"run manifest written to {args.manifest}")
    return code


def _cmd_summarize(args) -> int:
    from repro.analysis.summary import summarize_trace, summary_rows

    trace, _days, _columns = _load_trace(args)
    summary = summarize_trace(trace)
    print(render_table(
        ["server", "requests", "blocks", "traffic share", "read fraction"],
        summary_rows(summary),
        title=f"{summary.requests:,} requests / "
        f"{summary.block_accesses:,} block accesses over "
        f"{summary.days} days",
    ))
    print(
        f"\nread fraction: {summary.read_fraction:.2f}   "
        f"4K-aligned: {summary.aligned_fraction:.2%}   "
        f"mean request: {summary.request_size_blocks_mean:.1f} blocks"
    )
    print("request sizes:", summary.request_size_histogram)
    return 0


def _cmd_validate(args) -> int:
    from repro.traces.validation import validate_trace

    trace, days, _columns = _load_trace(args)
    report = validate_trace(trace, days=days)
    print(render_table(
        ["check", "measured", "accepted band", "status"],
        report.rows(),
        title="Fidelity against the paper's published trace statistics",
    ))
    if report.passed:
        print("\nall checks passed — the paper's conclusions should transfer")
        return 0
    print(f"\n{len(report.failures())} check(s) outside the published bands")
    return 1


def _cmd_skew(args) -> int:
    trace, days, columns = _load_trace(args)
    counts = (
        columns.daily_block_counts(days)
        if columns is not None
        else daily_block_counts(trace, days)
    )
    rows = []
    for day, table in enumerate(counts):
        q = access_count_quantiles(table)
        rows.append([
            day, q["blocks"], q["accesses"], round(q["top1_share"], 3),
            round(q["fraction_le_10"], 3), round(q["fraction_single"], 3),
        ])
    print(render_table(
        ["day", "unique blocks", "accesses", "top-1% share",
         "<=10 accesses", "single-access"],
        rows,
        title="Popularity skew (Figure 2 statistics)",
    ))
    return 0


def _cmd_drives(args) -> int:
    trace, days, columns = _load_trace(args)
    ctx = context_for_trace(trace, days=days, scale=args.scale, columnar=columns)
    result = run_policy(args.policy, ctx, track_minutes=True)
    device = INTEL_X25E.scaled(args.scale)
    series = occupancy_from_stats(
        result.stats, device, days * 1440, window_minutes=args.window_minutes
    )
    coverage = coverage_table(series, coverages=(1.0, 0.999, 0.9))
    print(render_table(
        ["metric", "value"],
        [
            ["peak drive occupancy", round(series.max_occupancy(), 3)],
            ["windows within 1 drive", f"{series.fraction_within(1):.2%}"],
            ["drives @100% coverage", coverage[1.0]],
            ["drives @99.9% coverage", coverage[0.999]],
            ["drives @90% coverage", coverage[0.9]],
        ],
        title=f"Drive needs for {args.policy} "
        f"({device.name}, {args.window_minutes}-min windows)",
    ))
    return 0


def _cmd_table2(args) -> int:
    rows = table2_rows(hit_rate=args.hit_rate, read_fraction=args.read_fraction)
    print(render_table(
        ["policy", "hits", "misses", "alloc-writes", "SSD writes", "SSD ops"],
        [
            [r.policy, r.hits, r.misses, r.allocation_writes,
             r.ssd_writes, r.ssd_operations]
            for r in rows
        ],
        title=f"Table 2 (hit rate {args.hit_rate:.0%}, "
        f"{args.read_fraction:.0%} reads)",
    ))
    return 0


def _cmd_check(args) -> int:
    from repro.staticcheck.cli import run as run_staticcheck

    return run_staticcheck(args)


_COMMANDS = {
    "simulate": _cmd_simulate,
    "shard-replay": _cmd_shard_replay,
    "skew": _cmd_skew,
    "summarize": _cmd_summarize,
    "validate": _cmd_validate,
    "drives": _cmd_drives,
    "serve-bench": _cmd_serve_bench,
    "table2": _cmd_table2,
    "check": _cmd_check,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
