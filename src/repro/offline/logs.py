"""Hash-partitioned access logs (SieveStore-D's metastate, Section 3.2).

SieveStore-D must count accesses for *every* block, including ones that
are not cache-resident.  The paper keeps this off the critical path by
logging each access as an ``<address, 1>`` tuple to one of R files,
selected by a hash of the address, on the SieveStore node's local
storage (not the SSD cache).  This module implements that log: an
append-only writer that partitions tuples across R files, and a reader
that streams them back for the reduction pass.

The on-disk format is deliberately simple and greppable: one
``address count`` pair per line.  Incremental compaction (Section 3.2's
"per-key reductions may be periodically performed in an incremental way
to reduce the size of the logs") rewrites a partition with its counts
merged; see :mod:`repro.offline.mapreduce`.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterator, List, Tuple, Union

from repro.util.hashing import stable_bucket

#: Hash salt for partition selection (decorrelated from the IMCT's).
_PARTITION_SALT = 0x10C5


class AccessLog:
    """An R-way hash-partitioned append-only access log on disk.

    Args:
        directory: where partition files live; created if missing.
        partitions: R, the number of partition files.

    The log is a context manager; writes are buffered through ordinary
    file handles, so closing (or exiting the ``with`` block) flushes.
    """

    def __init__(self, directory: Union[str, Path], partitions: int = 16):
        if partitions <= 0:
            raise ValueError(f"partitions must be positive, got {partitions}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.partitions = partitions
        self._handles: List[IO[str]] = []
        self.records_written = 0

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "AccessLog":
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def open(self) -> None:
        """Open all partition files for appending."""
        if self._handles:
            return
        self._handles = [
            (self.directory / self.partition_name(i)).open("a")
            for i in range(self.partitions)
        ]

    def close(self) -> None:
        """Flush and close all partition files."""
        for handle in self._handles:
            handle.close()
        self._handles = []

    # -- writing -------------------------------------------------------------
    @staticmethod
    def partition_name(index: int) -> str:
        """File name of partition ``index``."""
        return f"part-{index:04d}.log"

    def partition_of(self, address: int) -> int:
        """The partition an address is logged to (stable across runs)."""
        return stable_bucket(address, self.partitions, salt=_PARTITION_SALT)

    def append(self, address: int, count: int = 1) -> None:
        """Log one ``<address, count>`` tuple (count=1 for raw accesses)."""
        if not self._handles:
            raise RuntimeError("log is not open; use 'with AccessLog(...)'")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._handles[self.partition_of(address)].write(f"{address} {count}\n")
        self.records_written += 1

    # -- reading -------------------------------------------------------------
    def partition_path(self, index: int) -> Path:
        """Path of partition ``index`` on disk."""
        return self.directory / self.partition_name(index)

    def read_partition(self, index: int) -> Iterator[Tuple[int, int]]:
        """Stream ``(address, count)`` tuples from one partition file."""
        path = self.partition_path(index)
        if not path.exists():
            return
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                address_text, count_text = line.split()
                yield int(address_text), int(count_text)

    def partition_sizes(self) -> List[int]:
        """Byte size of each partition file (0 for missing files)."""
        return [
            self.partition_path(i).stat().st_size
            if self.partition_path(i).exists()
            else 0
            for i in range(self.partitions)
        ]

    def clear(self) -> None:
        """Delete all partition files (end of epoch)."""
        if self._handles:
            raise RuntimeError("close the log before clearing it")
        for index in range(self.partitions):
            path = self.partition_path(index)
            if path.exists():
                path.unlink()
        self.records_written = 0
