"""Offline metastate pipeline: hash-partitioned logs + per-key reduction.

This is SieveStore-D's bookkeeping machinery (Section 3.2): access
tuples logged to R files by address hash, sorted, run-length reduced,
and thresholded at epoch boundaries.
"""

from repro.offline.logs import AccessLog
from repro.offline.mapreduce import (
    compact,
    epoch_allocation,
    log_trace_day,
    reduce_all,
    reduce_partition,
)

__all__ = [
    "AccessLog",
    "compact",
    "epoch_allocation",
    "log_trace_day",
    "reduce_all",
    "reduce_partition",
]
