"""Per-key reduction over access logs (Section 3.2's map-reduce pass).

The paper reduces SieveStore-D's access logs with a map-reduce-like
structure: each of the R hash-partitioned files is (2) sorted, then (3)
contiguous runs of the same address are counted and emitted as
``<address, n>`` tuples.  At the epoch boundary, tuples with ``n``
greater than the threshold are allocated for the next epoch.

Three entry points:

* :func:`reduce_partition` — sort + run-length count of one partition;
* :func:`compact` — the incremental variant: rewrite each partition
  with its counts merged, keeping log growth bounded mid-epoch;
* :func:`epoch_allocation` — full end-of-epoch pass returning the
  blocks whose counts exceed the threshold (and, optionally, the full
  count table for analysis).

The reduction is deliberately implemented the way the paper describes —
sort then run-length — rather than with a dict, so the tests can verify
the map-reduce structure itself produces counts identical to the
in-memory simulation counters.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, List, Optional, Set, Tuple

from repro.offline.logs import AccessLog


def _sorted_tuples(log: AccessLog, partition: int) -> List[Tuple[int, int]]:
    tuples = list(log.read_partition(partition))
    tuples.sort(key=lambda pair: pair[0])
    return tuples


def reduce_partition(log: AccessLog, partition: int) -> Iterator[Tuple[int, int]]:
    """Sort one partition and emit ``<address, n>`` per contiguous run.

    Runs of the same address are summed: raw ``<address, 1>`` tuples and
    previously-compacted ``<address, n>`` tuples mix freely.
    """
    current_address = None
    current_count = 0
    for address, count in _sorted_tuples(log, partition):
        if address == current_address:
            current_count += count
            continue
        if current_address is not None:
            yield current_address, current_count
        current_address, current_count = address, count
    if current_address is not None:
        yield current_address, current_count


def reduce_all(log: AccessLog) -> Counter:
    """Reduce every partition into one address -> count table."""
    counts: Counter = Counter()
    for partition in range(log.partitions):
        for address, count in reduce_partition(log, partition):
            counts[address] += count
    return counts


def compact(log: AccessLog) -> int:
    """Incrementally compact every partition in place.

    Each partition file is rewritten with one ``<address, n>`` line per
    unique address.  Returns the total byte reduction.  The log must be
    closed (no open write handles).
    """
    before = sum(log.partition_sizes())
    for partition in range(log.partitions):
        reduced = list(reduce_partition(log, partition))
        path = log.partition_path(partition)
        if not reduced:
            if path.exists():
                path.unlink()
            continue
        with path.open("w") as handle:
            for address, count in reduced:
                handle.write(f"{address} {count}\n")
    after = sum(log.partition_sizes())
    return before - after


def epoch_allocation(
    log: AccessLog, threshold: int, capacity_blocks: Optional[int] = None
) -> Set[int]:
    """End-of-epoch pass: blocks whose epoch count exceeds ``threshold``.

    Mirrors :meth:`repro.core.sievestore_d.SieveStoreD.select_allocation`
    exactly — including the capacity cap, applied most-accessed-first —
    so the offline pipeline and the in-memory simulation agree.
    """
    counts = reduce_all(log)
    qualified = [
        (count, address) for address, count in counts.items() if count > threshold
    ]
    if capacity_blocks is not None and len(qualified) > capacity_blocks:
        qualified.sort(reverse=True)
        qualified = qualified[:capacity_blocks]
    return {address for _, address in qualified}


def log_trace_day(log: AccessLog, requests) -> int:
    """Append every block access of an iterable of requests to the log.

    Returns the number of tuples written.  Convenience used by examples
    and the equivalence tests.
    """
    written = 0
    for request in requests:
        for address in request.addresses():
            log.append(address)
            written += 1
    return written
